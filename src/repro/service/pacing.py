"""A sans-IO RAP-style AIMD pacer for the asyncio service.

This is the congestion-control half of :class:`~repro.transport.rap.
RapSource` lifted out of the simulator: the same additive increase (one
packet per SRTT every SRTT), the same multiplicative halving, the same
hole-based loss detection (three-newer-ACKs) with a conservative timeout
backstop, and the same one-backoff-per-congestion-event discipline.

What changed is the clocking: the simulator schedules events, while this
class is *driven* — the owner calls :meth:`advance` with the current
time (event-loop seconds) before acting, asks :meth:`next_deadline` how
long to sleep, and feeds ACKs through :meth:`on_ack`. All methods return
plain :class:`PacerActions` describing what the congestion controller
decided; the caller translates them into
:class:`~repro.server.core.SessionCore` feedback calls. No I/O, no
asyncio, no wall-clock reads happen here, which keeps the algorithm unit
testable with a scripted clock.

Two service-specific guards that the simulator does not need:

- ``srtt_floor``: loopback RTTs are tens of microseconds; an unfloored
  SRTT would make the additive-increase timer spin and the slope
  estimate ``P/srtt^2`` explode. The floor emulates a sane network RTT.
- ``max_rate``: a cap on the transmission rate so an uncongested
  loopback session cannot ramp without bound (the receiver's
  ``max_buffer_seconds`` flow control idles slots anyway, but the pacer
  must not busy-loop between them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: Per-packet bookkeeping: (sent_at, meta, size).
Outstanding = tuple[float, dict, int]


@dataclass
class PacerActions:
    """What one pacer step decided; the caller feeds these to the core."""

    #: Packets confirmed delivered: (seq, meta, size).
    acked: list[tuple[int, dict, int]] = field(default_factory=list)
    #: Packets declared lost: (seq, meta, size).
    lost: list[tuple[int, dict, int]] = field(default_factory=list)
    #: New rate after a multiplicative decrease, or None.
    backoff_rate: Optional[float] = None
    #: True when the loss came from the timeout backstop.
    timed_out: bool = False

    def __bool__(self) -> bool:
        return bool(self.acked or self.lost
                    or self.backoff_rate is not None)


class RapPacer:
    """RAP congestion control as an externally-clocked state machine."""

    REORDER_THRESHOLD = 3
    SRTT_GAIN = 0.125
    RTTVAR_GAIN = 0.25

    def __init__(
        self,
        packet_size: int,
        now: float,
        srtt_init: float = 0.2,
        srtt_floor: float = 0.02,
        initial_rate: Optional[float] = None,
        min_rate: Optional[float] = None,
        max_rate: Optional[float] = None,
    ) -> None:
        if packet_size <= 0:
            raise ValueError("packet_size must be positive")
        if srtt_floor <= 0:
            raise ValueError("srtt_floor must be positive")
        self.packet_size = packet_size
        self.srtt_floor = srtt_floor
        self.srtt = max(srtt_init, srtt_floor)
        self.rttvar = self.srtt / 2
        self.min_rate = (min_rate if min_rate is not None
                         else packet_size / 2.0)
        self.max_rate = max_rate
        self._rate = (initial_rate if initial_rate is not None
                      else packet_size / self.srtt)
        self._rate = self._clamp(self._rate)

        self.next_seq = 0
        self.recovery_seq = 0
        self.highest_acked = -1
        self.outstanding: dict[int, Outstanding] = {}
        self.last_ack_time = now
        self.backoffs = 0
        self.timeouts = 0
        self.packets_lost = 0
        self.acks_received = 0

        self._next_send = now
        self._next_step = now + self.srtt
        self._next_timeout_check = now + self.rto / 2

    # -------------------------------------------------------------- state

    @property
    def rate(self) -> float:
        """Current transmission rate in bytes/s."""
        return self._rate

    @property
    def ipg(self) -> float:
        """Current inter-packet gap in seconds."""
        return self.packet_size / self._rate

    @property
    def slope(self) -> float:
        """Additive-increase slope S = P/srtt^2 in bytes/s^2."""
        return self.packet_size / (self.srtt * self.srtt)

    @property
    def rto(self) -> float:
        """Timeout backstop, RFC 6298 shaped."""
        return min(5.0, max(0.2, self.srtt + 4 * self.rttvar))

    def _clamp(self, rate: float) -> float:
        rate = max(rate, self.min_rate)
        if self.max_rate is not None:
            rate = min(rate, self.max_rate)
        return rate

    # ------------------------------------------------------------ sending

    def send_due(self, now: float) -> bool:
        """Is a transmission opportunity due?"""
        return now >= self._next_send

    def register_send(self, now: float, meta: dict, size: int) -> int:
        """Consume the current opportunity with a real packet."""
        seq = self.next_seq
        self.outstanding[seq] = (now, meta, size)
        self.next_seq += 1
        self._next_send = now + self.ipg
        return seq

    def skip_send(self, now: float) -> None:
        """Consume the opportunity with an idle slot (receiver full)."""
        self._next_send = now + self.ipg

    def next_deadline(self, now: float) -> float:
        """Earliest time anything needs to run again."""
        return min(self._next_send, self._next_step,
                   self._next_timeout_check)

    # ----------------------------------------------------------- clocking

    def advance(self, now: float) -> PacerActions:
        """Run every timer that is due at ``now``."""
        actions = PacerActions()
        while now >= self._next_step:
            self._rate = self._clamp(self._rate
                                     + self.packet_size / self.srtt)
            self._next_step += self.srtt
        while now >= self._next_timeout_check:
            self._check_timeout(now, actions)
            self._next_timeout_check += self.rto / 2
        return actions

    def _check_timeout(self, now: float, actions: PacerActions) -> None:
        idle = now - self.last_ack_time
        if not self.outstanding or idle <= self.rto:
            return
        self.timeouts += 1
        actions.timed_out = True
        for seq in sorted(self.outstanding):
            self._declare_lost(seq, actions)
        self._backoff(self.next_seq, actions)
        self.last_ack_time = now

    # ----------------------------------------------------------- feedback

    def on_ack(self, seq: int, echo_ts: Optional[float],
               now: float) -> PacerActions:
        """An ACK arrived; returns deliveries/losses/backoff it caused."""
        actions = PacerActions()
        self.acks_received += 1
        self.last_ack_time = now
        if echo_ts is not None:
            sample = now - echo_ts
            if sample >= 0:
                self._update_rtt(sample)
        entry = self.outstanding.pop(seq, None)
        if entry is not None:
            _, meta, size = entry
            actions.acked.append((seq, meta, size))
        self.highest_acked = max(self.highest_acked, seq)

        horizon = self.highest_acked - self.REORDER_THRESHOLD
        lost = [s for s in self.outstanding if s <= horizon]
        if lost:
            newest = max(lost)
            for s in sorted(lost):
                self._declare_lost(s, actions)
            self._backoff(newest, actions)
        return actions

    def _declare_lost(self, seq: int, actions: PacerActions) -> None:
        _, meta, size = self.outstanding.pop(seq)
        self.packets_lost += 1
        actions.lost.append((seq, meta, size))

    def _backoff(self, triggering_seq: int,
                 actions: PacerActions) -> None:
        if triggering_seq < self.recovery_seq:
            return  # this loss belongs to an already-handled event
        self._rate = max(self.min_rate, self._rate / 2)
        self.recovery_seq = self.next_seq
        self.backoffs += 1
        actions.backoff_rate = self._rate

    def _update_rtt(self, sample: float) -> None:
        sample = max(sample, self.srtt_floor)
        self.rttvar = ((1 - self.RTTVAR_GAIN) * self.rttvar
                       + self.RTTVAR_GAIN * abs(self.srtt - sample))
        self.srtt = max(self.srtt_floor,
                        (1 - self.SRTT_GAIN) * self.srtt
                        + self.SRTT_GAIN * sample)
