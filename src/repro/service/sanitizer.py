"""Event-loop stall sanitizer: the runtime complement of RL013/RL015.

The static rules prove the *absence* of known blocking patterns; this
module measures the loop itself while the service runs, so a blocking
call the analyzer cannot see (a C extension, a pathological allocation,
an accidental quadratic in a callback) still shows up in CI.

Two measurements:

- **Callback lag.** A heartbeat coroutine asks to sleep for
  ``interval`` seconds and records how much *later* than the deadline
  it actually woke.  On an idle loop that overshoot is microseconds;
  anything above ``stall_threshold`` means some callback held the loop
  longer than a pacing quantum and every session's send timing slipped
  with it.  Samples feed a histogram (p50/p99/max in :meth:`report`).
- **Task census.**  The set of live tasks is recorded at
  :meth:`start`; whatever is still alive at :meth:`stop` beyond that
  baseline (and is not the heartbeat itself) is a leak -- the runtime
  shadow of RL015's dropped-spawn finding.

The sanitizer deliberately measures from *inside* the loop under test:
a separate thread would need locking and would time the OS scheduler,
not the loop.  Overhead is one timer callback per ``interval`` (20 Hz
by default), far below the per-session send timers it rides alongside.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Optional

from repro.telemetry.digest import percentile
from repro.telemetry.metrics import MetricsRegistry

#: Histogram bounds for loop lag, seconds.  The interesting range is
#: sub-millisecond (healthy) through tens of milliseconds (a stall a
#: human can see in playback); one decade per bucket pair.
LAG_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.010,
               0.025, 0.050, 0.100, 0.250)


@dataclass(frozen=True)
class SanitizerConfig:
    """Knobs for :class:`LoopSanitizer`.

    ``interval`` is the heartbeat period: lag is sampled this often,
    so a stall shorter than one interval can hide between beats --
    50 ms catches anything long enough to disturb pacing.
    ``stall_threshold`` is the lag above which a sample counts as a
    stall; 10 ms is one pacing quantum at the default rates.
    """

    interval: float = 0.05
    stall_threshold: float = 0.010


class LoopSanitizer:
    """Samples event-loop callback lag and censuses leaked tasks.

    Usage::

        sanitizer = LoopSanitizer()
        await sanitizer.start()
        ... run the workload on this loop ...
        await sanitizer.stop()
        summary = sanitizer.report()

    With a :class:`~repro.telemetry.metrics.MetricsRegistry` the lag
    histogram, stall counter and leak gauge are exported alongside the
    service's own metrics.
    """

    def __init__(self, config: Optional[SanitizerConfig] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.config = config or SanitizerConfig()
        self.lag_samples: list[float] = []
        self.stalls = 0
        self.leaked_task_names: list[str] = []
        self._task: Optional[asyncio.Task] = None
        self._baseline: set[asyncio.Task] = set()
        self._lag_hist = (
            metrics.histogram_hook(
                "service_loop_lag_seconds",
                "event-loop callback lag sampled by the sanitizer",
                buckets=LAG_BUCKETS)
            if metrics is not None else None)
        self._stall_count = (
            metrics.counter_hook(
                "service_loop_stalls_total",
                "lag samples above the stall threshold")
            if metrics is not None else None)
        self._leak_gauge = (
            metrics.gauge_hook(
                "service_leaked_tasks",
                "tasks alive at stop() beyond the start() baseline")
            if metrics is not None else None)

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        """Record the task baseline and begin heartbeating."""
        if self._task is not None:
            return
        self._baseline = set(asyncio.all_tasks())
        self._task = asyncio.get_running_loop().create_task(
            self._heartbeat(), name="loop-sanitizer")

    async def stop(self) -> None:
        """Cancel the heartbeat and census tasks that outlived start()."""
        task = self._task
        if task is None:
            return
        self._task = None
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass
        current = asyncio.current_task()
        leaked = [
            t for t in asyncio.all_tasks()
            if t is not task and t is not current
            and t not in self._baseline and not t.done()
        ]
        self.leaked_task_names = sorted(t.get_name() for t in leaked)
        if self._leak_gauge is not None:
            self._leak_gauge(float(len(leaked)))

    async def _heartbeat(self) -> None:
        loop = asyncio.get_running_loop()
        interval = self.config.interval
        threshold = self.config.stall_threshold
        while True:
            deadline = loop.time() + interval
            await asyncio.sleep(interval)
            lag = max(0.0, loop.time() - deadline)
            self.lag_samples.append(lag)
            if self._lag_hist is not None:
                self._lag_hist(lag)
            if lag > threshold:
                self.stalls += 1
                if self._stall_count is not None:
                    self._stall_count(1.0)

    # -------------------------------------------------------------- report

    def report(self) -> dict:
        """Lag percentiles, stall count and leak census as plain data."""
        return {
            "lag_samples": len(self.lag_samples),
            "lag_p50": percentile(self.lag_samples, 50.0),
            "lag_p99": percentile(self.lag_samples, 99.0),
            "lag_max": max(self.lag_samples, default=0.0),
            "stalls": self.stalls,
            "leaked_tasks": len(self.leaked_task_names),
            "leaked_task_names": self.leaked_task_names,
        }
