"""The asyncio UDP streaming server.

:class:`StreamingService` is a single datagram endpoint multiplexing
many sessions: each HELLO spawns a :class:`ServiceSession` owning one
:class:`~repro.server.core.SessionCore` (the paper's quality adapter
plus feedback wiring — the same object the simulator drives) and one
:class:`~repro.service.pacing.RapPacer` (the sans-IO AIMD controller).
A per-session asyncio task runs the send loop; the shared
``datagram_received`` dispatches ACK/FIN feedback to the owning session
by session id.

Clocking: every timestamp is *service-relative* — ``loop.time() - t0``
— so decision records and FIN_ACK summaries read like simulation
traces (seconds from service start), and DATA ``send_ts`` echoes stay
small enough for the wire format.

Backpressure: each session owns a bounded outbox. When the event loop
pauses writing (socket buffer full) frames queue there; a full outbox
drops the *oldest* frame (the receiver treats it as loss, which is the
correct congestion signal) and counts it.

Flow control: the service config defaults ``max_buffer_seconds`` so an
uncongested loopback session parks at a bounded receiver buffer and the
pacer's ``max_rate`` cap keeps the send loop from spinning.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import QAConfig
from repro.server.core import SessionCore
from repro.service import protocol
from repro.service.pacing import PacerActions, RapPacer
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.recorder import FlightRecorder
from repro.telemetry.tracing import SpanRecorder, TraceContext

#: Feedback-latency histogram bounds (seconds): loopback sits in the
#: first buckets, an impaired WAN profile in the last.
FEEDBACK_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                    0.1, 0.25, 0.5, 1.0, 2.5)

#: Cap on raw feedback-latency samples kept for percentile reporting.
MAX_LATENCY_SAMPLES = 250_000


def default_service_qa() -> QAConfig:
    """The service's QA profile: the paper's defaults plus flow control.

    ``max_buffer_seconds`` bounds the receiver buffer an uncongested
    session accumulates; without it a loopback run fills memory at
    ``max_rate`` for the whole soak.
    """
    return QAConfig(max_buffer_seconds=8.0)


@dataclass
class ServiceConfig:
    """Knobs for one :class:`StreamingService` instance."""

    host: str = "127.0.0.1"
    #: UDP port; 0 binds an ephemeral port (read it back from
    #: :attr:`StreamingService.port`).
    port: int = 0
    qa: QAConfig = field(default_factory=default_service_qa)
    #: HELLOs beyond this many live sessions are REJECTed.
    max_sessions: int = 512
    #: Seconds without an ACK before a session is reaped.
    session_timeout: float = 10.0
    #: Bounded per-session outbox (frames) for paused-transport spells.
    send_queue_frames: int = 64
    #: Emulated RTT floor for the pacer (see RapPacer.srtt_floor).
    srtt_floor: float = 0.02
    #: max_rate = headroom * max_layers * layer_rate.
    rate_headroom: float = 2.0
    #: Record adapter decisions into a FlightRecorder.
    record_decisions: bool = False
    recorder_capacity: int = 65536
    #: Collect MetricsRegistry counters/gauges/histograms.
    collect_metrics: bool = False
    #: Record distributed-tracing spans into a SpanRecorder. Sessions
    #: adopt the trace context a client ships in its HELLO options (and
    #: echo it in the WELCOME config); clients that send none get a
    #: context derived from their session id.
    trace_spans: bool = False
    span_capacity: int = 65536

    def __post_init__(self) -> None:
        if self.qa.packet_size < protocol.MIN_PACKET_SIZE:
            raise ValueError(
                f"packet_size {self.qa.packet_size} below protocol "
                f"minimum {protocol.MIN_PACKET_SIZE}")
        if self.max_sessions <= 0:
            raise ValueError("max_sessions must be positive")
        if self.send_queue_frames <= 0:
            raise ValueError("send_queue_frames must be positive")

    @property
    def max_rate(self) -> float:
        """Pacer rate cap in bytes/s."""
        return (self.rate_headroom
                * self.qa.max_layers * self.qa.layer_rate)


def session_summary(core: SessionCore, pacer: RapPacer) -> dict:
    """The server-side session outcome shipped in the FIN_ACK body.

    JSON-friendly: the client rebuilds a
    :class:`~repro.core.metrics.QualityMetrics` from it so service runs
    flow through the exact report path simulated runs use.
    """
    m = core.adapter.metrics
    return {
        "active_layers": core.active_layers,
        "adds": [[t, layer] for t, layer in m.adds],
        "drops": [
            [e.time, e.layer, e.cause.value, e.buf_drop, e.buf_total,
             e.required, e.drainable]
            for e in m.drops
        ],
        "startup_latency": m.startup_latency,
        "sent_per_layer": list(core.adapter.sent_bytes_per_layer),
        "retransmitted_bytes": core.adapter.retransmitted_bytes,
        "backoffs": pacer.backoffs,
        "packets_lost": pacer.packets_lost,
        "acks_received": pacer.acks_received,
        "final_rate": pacer.rate,
        "srtt": pacer.srtt,
    }


class ServiceSession:
    """One client's stream: SessionCore + RapPacer + send task."""

    def __init__(self, service: "StreamingService", session_id: int,
                 addr: tuple, options: Optional[dict] = None) -> None:
        self.service = service
        self.session_id = session_id
        self.addr = addr
        self.label = f"session{session_id}"
        now = service.now()
        cfg = service.config
        recorder_hook = (service.recorder.hook(self.label)
                         if service.recorder is not None else None)
        # Adopt the client's trace context from the HELLO options so
        # both ends of the wire stamp spans into one trace; a client
        # that sent none gets a context derived from its session id.
        self.trace = TraceContext.from_wire(options or {})
        if self.trace is None and service.spans is not None:
            self.trace = TraceContext.derive(session_id, "service")
        self._span = (
            service.spans.span_hook(self.label, self.trace)
            if service.spans is not None and self.trace is not None
            else None)
        self.core = SessionCore(
            cfg.qa, now_fn=service.now, start=now,
            on_event=recorder_hook, span_hook=self._span)
        # The pacer *is* a SessionTransport: it exposes rate and slope.
        self.pacer = RapPacer(
            self.core.config.packet_size, now,
            srtt_floor=cfg.srtt_floor, max_rate=cfg.max_rate)
        self.core.bind_transport(self.pacer)
        self.outbox: deque = deque()
        self.queue_drops = 0
        self.data_sent = 0
        self.started = now
        self.done = False
        self._drain_period = self.core.config.drain_period
        self._next_tick = now + self._drain_period
        self.task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------ sending

    def _transmit(self, frame: bytes) -> None:
        service = self.service
        if service.send_paused or self.outbox:
            if len(self.outbox) >= service.config.send_queue_frames:
                self.outbox.popleft()
                self.queue_drops += 1
                service.count("queue_drops")
            self.outbox.append(frame)
            return
        service.sendto(frame, self.addr)

    def flush(self) -> None:
        """Drain the outbox after the transport resumes writing."""
        service = self.service
        while self.outbox and not service.send_paused:
            service.sendto(self.outbox.popleft(), self.addr)

    def _send_data(self, now: float) -> None:
        meta = self.core.pick_payload(self.pacer.next_seq)
        if meta is None:
            # Receiver flow control: burn the opportunity idle, exactly
            # like the simulated RapSource does.
            self.pacer.skip_send(now)
            return
        size = self.core.config.packet_size
        seq = self.pacer.register_send(now, meta, size)
        frame = protocol.encode_data(
            self.session_id, seq, meta["layer"], self.core.active_layers,
            now, size)
        self._transmit(frame)
        self.data_sent += 1

    # ----------------------------------------------------------- feedback

    def _apply(self, actions: PacerActions) -> None:
        # Order matters and mirrors the simulated RapSource: deliveries,
        # then losses, then the (single) backoff for the event.
        for seq, meta, size in actions.acked:
            self.core.on_ack(seq, meta, size)
        for seq, meta, size in actions.lost:
            self.core.on_loss(seq, meta, size)
        if actions.backoff_rate is not None:
            self.core.on_backoff(actions.backoff_rate)
            span = self._span
            if span is not None:
                now = self.service.now()
                span(now, now, "pacer.backoff", {
                    "rate": actions.backoff_rate,
                    "lost": len(actions.lost),
                    "timeout": actions.timed_out,
                })

    def handle_ack(self, frame: protocol.AckFrame) -> None:
        now = self.service.now()
        self._apply(self.pacer.on_ack(frame.acked_seq, frame.echo_ts,
                                      now))
        self.service.observe_feedback_latency(now - frame.echo_ts)

    # ---------------------------------------------------------- main loop

    async def run(self) -> None:
        service = self.service
        timeout = service.config.session_timeout
        try:
            while not self.done:
                now = service.now()
                # Pacer state is re-read from `self` at the top of every
                # iteration and each step below is a single statement on
                # the one loop thread, so the RL014 spans here are
                # statement-atomic by construction.
                self._apply(self.pacer.advance(now))  # repro-lint: disable=RL014
                while now >= self._next_tick:
                    self.core.tick()
                    self._next_tick += self._drain_period
                if self.pacer.send_due(now):
                    self._send_data(now)  # repro-lint: disable=RL014
                if now - self.pacer.last_ack_time > timeout:
                    service.expire_session(self)
                    return
                now = service.now()
                deadline = min(self.pacer.next_deadline(now),
                               self._next_tick)
                await asyncio.sleep(max(0.0, deadline - now))
        except asyncio.CancelledError:
            raise

    def finish(self) -> None:
        """Stop the send loop; the task exits at its next wakeup."""
        self.done = True

    def record_session_span(self, now: float, reason: str) -> None:
        """Close the session-lifecycle span (FIN or expiry)."""
        span = self._span
        if span is not None:
            span(self.started, now, "session", {
                "session_id": self.session_id,
                "reason": reason,
                "data_sent": self.data_sent,
                "queue_drops": self.queue_drops,
                "active_layers": self.core.active_layers,
            })


class StreamingService(asyncio.DatagramProtocol):
    """The datagram endpoint multiplexing every session.

    Use :meth:`start` to bind::

        service = await StreamingService.start(ServiceConfig())
        ... drive load against service.port ...
        await service.close()
    """

    def __init__(self, config: Optional[ServiceConfig] = None,
                 recorder: Optional[FlightRecorder] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 spans: Optional[SpanRecorder] = None) -> None:
        self.config = config or ServiceConfig()
        cfg = self.config
        if recorder is None and cfg.record_decisions:
            recorder = FlightRecorder(capacity=cfg.recorder_capacity)
        if metrics is None and cfg.collect_metrics:
            metrics = MetricsRegistry()
        if metrics is not None and not metrics.enabled:
            # RL007 discipline: a disabled registry is the same as none.
            metrics = None
        if spans is None and cfg.trace_spans:
            spans = SpanRecorder(capacity=cfg.span_capacity)
        if spans is not None and not spans.enabled:
            spans = None
        self.recorder = recorder
        self.metrics = metrics
        self.spans = spans
        self.sessions: dict[int, ServiceSession] = {}
        self._by_addr: dict[tuple, int] = {}
        #: Every live session task, including FIN'd sessions whose task
        #: has not observed its ``done`` flag yet — close() must cancel
        #: these too or they leak past shutdown.
        self._tasks: set[asyncio.Task] = set()
        self._next_session_id = 1
        self.send_paused = False
        self.transport: Optional[asyncio.DatagramTransport] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._t0 = 0.0
        self._closed = False
        #: Raw feedback-latency samples (seconds) for percentiles.
        self.feedback_latencies: list[float] = []
        self.counters = {
            "sessions_started": 0,
            "sessions_completed": 0,
            "sessions_expired": 0,
            "sessions_rejected": 0,
            "acks_received": 0,
            "malformed_frames": 0,
            "queue_drops": 0,
        }
        self._feedback_hist = (
            metrics.histogram_hook(
                "service_feedback_latency_seconds",
                "ACK echo-to-receipt latency",
                buckets=FEEDBACK_BUCKETS)
            if metrics is not None else None)

    # ------------------------------------------------------------ lifecycle

    @classmethod
    async def start(cls, config: Optional[ServiceConfig] = None,
                    recorder: Optional[FlightRecorder] = None,
                    metrics: Optional[MetricsRegistry] = None,
                    spans: Optional[SpanRecorder] = None,
                    ) -> "StreamingService":
        service = cls(config, recorder=recorder, metrics=metrics,
                      spans=spans)
        loop = asyncio.get_running_loop()
        service._loop = loop
        service._t0 = loop.time()
        await loop.create_datagram_endpoint(
            lambda: service,
            local_addr=(service.config.host, service.config.port))
        return service

    @property
    def port(self) -> int:
        assert self.transport is not None, "service not started"
        return self.transport.get_extra_info("sockname")[1]

    def now(self) -> float:
        """Service-relative seconds (the session clock)."""
        assert self._loop is not None
        return self._loop.time() - self._t0

    @property
    def serving(self) -> bool:
        """True while the socket is bound and close() has not begun."""
        return self.transport is not None and not self._closed

    async def close(self) -> None:
        """Graceful shutdown: cancel session tasks, close the socket."""
        if self._closed:
            return
        self._closed = True
        tasks = list(self._tasks)
        for task in tasks:
            task.cancel()
        for task in tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self.sessions.clear()
        self._by_addr.clear()
        if self.transport is not None:
            self.transport.close()
        # Let the transport's connection_lost callback run so the
        # socket is fully released before we return.
        await asyncio.sleep(0)

    # ----------------------------------------------------------- bookkeeping

    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount
        if self.metrics is not None:
            self.metrics.counter(
                f"service_{name}_total").inc(amount)

    def observe_feedback_latency(self, latency: float) -> None:
        if latency < 0:
            return
        if len(self.feedback_latencies) < MAX_LATENCY_SAMPLES:
            self.feedback_latencies.append(latency)
        if self._feedback_hist is not None:
            self._feedback_hist(latency)

    @property
    def decisions_recorded(self) -> int:
        return (self.recorder.total_recorded
                if self.recorder is not None else 0)

    # ------------------------------------------------------------- protocol

    def connection_made(self, transport) -> None:
        self.transport = transport

    def connection_lost(self, exc) -> None:
        self.transport = None

    def pause_writing(self) -> None:
        self.send_paused = True

    def resume_writing(self) -> None:
        self.send_paused = False
        for session in self.sessions.values():
            session.flush()

    def error_received(self, exc) -> None:
        # ICMP errors (e.g. a client went away); the idle reaper handles
        # the session.
        pass

    def sendto(self, frame: bytes, addr: tuple) -> None:
        if self.transport is not None:
            self.transport.sendto(frame, addr)

    def datagram_received(self, data: bytes, addr: tuple) -> None:
        try:
            frame = protocol.decode(data)
        except protocol.ProtocolError:
            self.count("malformed_frames")
            return
        if isinstance(frame, protocol.HelloFrame):
            self._handle_hello(frame, addr)
        elif isinstance(frame, protocol.AckFrame):
            session = self.sessions.get(frame.session_id)
            if session is not None and not session.done:
                self.count("acks_received")
                session.handle_ack(frame)
        elif isinstance(frame, protocol.FinFrame):
            self._handle_fin(frame, addr)
        else:
            self.count("malformed_frames")

    # ------------------------------------------------------------- sessions

    def _welcome_body(self, session: ServiceSession) -> dict:
        cfg = session.core.config
        body = {
            "layer_rate": cfg.layer_rate,
            "max_layers": cfg.max_layers,
            "packet_size": cfg.packet_size,
            "startup_delay": cfg.startup_delay,
        }
        # Echo the trace context so the client can verify propagation;
        # untraced sessions keep the historical body shape.
        if session.trace is not None:
            body[protocol.TRACE_KEY] = session.trace.to_wire()
        return body

    def _handle_hello(self, frame: protocol.HelloFrame,
                      addr: tuple) -> None:
        existing = self._by_addr.get(addr)
        if existing is not None:
            # Duplicate HELLO (lost WELCOME): re-send, don't respawn.
            session = self.sessions[existing]
            self.sendto(protocol.encode_welcome(
                session.session_id, self._welcome_body(session)), addr)
            return
        if len(self.sessions) >= self.config.max_sessions:
            self.count("sessions_rejected")
            self.sendto(protocol.encode_reject("server full"), addr)
            return
        session_id = self._next_session_id
        self._next_session_id += 1
        session = ServiceSession(self, session_id, addr,
                                 options=frame.options)
        self.sessions[session_id] = session
        self._by_addr[addr] = session_id
        self.count("sessions_started")
        if self.metrics is not None:
            self.metrics.gauge("service_active_sessions").set(
                len(self.sessions))
        self.sendto(protocol.encode_welcome(
            session_id, self._welcome_body(session)), addr)
        assert self._loop is not None
        session.task = self._loop.create_task(
            session.run(), name=f"repro-serve-{session.label}")
        self._tasks.add(session.task)
        session.task.add_done_callback(self._tasks.discard)

    def _remove(self, session: ServiceSession) -> None:
        self.sessions.pop(session.session_id, None)
        if self._by_addr.get(session.addr) == session.session_id:
            self._by_addr.pop(session.addr, None)
        if self.metrics is not None:
            self.metrics.gauge("service_active_sessions").set(
                len(self.sessions))

    def _handle_fin(self, frame: protocol.FinFrame, addr: tuple) -> None:
        session = self.sessions.get(frame.session_id)
        if session is None:
            # FIN retransmit for an already-finished session: re-ACK
            # with an empty summary so the client stops retrying.
            self.sendto(protocol.encode_fin_ack(frame.session_id, {}),
                        addr)
            return
        # Summarize while the session is live: finish() freezes the
        # pacer, so a later rate/slope read would observe zeros (RL016).
        summary = session_summary(session.core, session.pacer)
        session.record_session_span(self.now(), "fin")
        session.finish()
        self.count("sessions_completed")
        self.sendto(protocol.encode_fin_ack(
            session.session_id, summary), addr)
        self._remove(session)
        # datagram_received never runs inside the session task, so a
        # direct cancel is safe and frees the task immediately.
        if session.task is not None:
            session.task.cancel()

    def expire_session(self, session: ServiceSession) -> None:
        """The idle reaper fired: drop a session that stopped ACKing."""
        session.record_session_span(self.now(), "expired")
        session.finish()
        self.count("sessions_expired")
        self._remove(session)
