"""``repro-serve`` / ``repro-load`` console entry points.

``repro-serve`` binds the asyncio streaming service and runs until its
``--duration`` elapses (or forever with 0, until interrupted).

``repro-load`` drives a fleet of concurrent load sessions against a
running server — or, with ``--self-serve``, starts an in-process server
on an ephemeral loopback port first, which is how CI soaks the service
in one command with no port coordination. The fleet's outcome flows
through the same report path simulated scenarios use (per-session QoE
plus aggregate Jain fairness), with optional JSON output for gating.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import sys
from typing import Optional, Sequence

from repro.core.config import QAConfig
from repro.service.client import LoadFleet
from repro.service.impairment import ImpairmentConfig
from repro.service.introspect import IntrospectionServer
from repro.service.results import (fleet_result, fleet_summary,
                                   render_fleet_report)
from repro.service.sanitizer import LoopSanitizer
from repro.service.server import ServiceConfig, StreamingService
from repro.telemetry.digest import percentile
from repro.telemetry.exporters import export_chrome_trace
from repro.telemetry.tracing import merge_spans


def _qa_from_args(args: argparse.Namespace) -> QAConfig:
    return QAConfig(
        layer_rate=args.layer_rate,
        max_layers=args.max_layers,
        packet_size=args.packet_size,
        max_buffer_seconds=args.max_buffer,
    )


def _add_qa_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--layer-rate", type=float, default=2500.0,
                        help="per-layer consumption C in bytes/s")
    parser.add_argument("--max-layers", type=int, default=8)
    parser.add_argument("--packet-size", type=int, default=1000)
    parser.add_argument("--max-buffer", type=float, default=8.0,
                        help="receiver flow-control cap in seconds")


def _service_config(args: argparse.Namespace,
                    port: Optional[int] = None) -> ServiceConfig:
    # /metrics needs a registry even when no --metrics-out file is due.
    collect = (getattr(args, "metrics_out", None) is not None
               or getattr(args, "introspect", None) is not None)
    return ServiceConfig(
        host=args.host,
        port=args.port if port is None else port,
        qa=_qa_from_args(args),
        max_sessions=args.max_sessions,
        record_decisions=getattr(args, "flight", None) is not None,
        collect_metrics=collect,
        trace_spans=getattr(args, "trace", None) is not None,
    )


def _write_service_outputs(service: StreamingService,
                           args: argparse.Namespace) -> None:
    if getattr(args, "flight", None) and service.recorder is not None:
        service.recorder.write_jsonl(pathlib.Path(args.flight))
    if getattr(args, "metrics_out", None) and service.metrics is not None:
        pathlib.Path(args.metrics_out).write_text(
            service.metrics.to_prometheus())


def _add_observability_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", metavar="PATH",
                        help="record distributed-tracing spans and "
                             "write a Chrome trace-event JSON on exit "
                             "(open in ui.perfetto.dev)")
    parser.add_argument("--introspect", type=int, default=None,
                        metavar="PORT",
                        help="serve live /metrics, /sessions and "
                             "/healthz over HTTP on this port "
                             "(0 = ephemeral; implies a metrics "
                             "registry)")


# ------------------------------------------------------------------ serve


def _build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="asyncio layered-video streaming server")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=9653)
    parser.add_argument("--duration", type=float, default=0.0,
                        help="seconds to serve; 0 = until interrupted")
    parser.add_argument("--max-sessions", type=int, default=512)
    _add_qa_args(parser)
    parser.add_argument("--flight", metavar="PATH",
                        help="write adapter decision JSONL on exit")
    parser.add_argument("--metrics-out", metavar="PATH",
                        help="write Prometheus metrics text on exit")
    _add_observability_args(parser)
    parser.add_argument("--quiet", action="store_true")
    return parser


async def _serve(args: argparse.Namespace,
                 started: list[StreamingService]) -> int:
    service = await StreamingService.start(_service_config(args))
    started.append(service)
    introspect: Optional[IntrospectionServer] = None
    sanitizer: Optional[LoopSanitizer] = None
    if args.introspect is not None:
        # The listener gets its own sanitizer so /healthz always has
        # live lag data, even without an explicit soak harness.
        sanitizer = LoopSanitizer(metrics=service.metrics)
        await sanitizer.start()
        introspect = await IntrospectionServer.start(
            service, sanitizer=sanitizer,
            host=args.host, port=args.introspect)
    if not args.quiet:
        print(f"repro-serve: listening on "
              f"{args.host}:{service.port}", flush=True)
        if introspect is not None:
            print(f"repro-serve: introspection on "
                  f"http://{args.host}:{introspect.port}", flush=True)
    try:
        if args.duration > 0:
            await asyncio.sleep(args.duration)
        else:
            await asyncio.Event().wait()
    except (KeyboardInterrupt, asyncio.CancelledError):
        pass
    finally:
        if introspect is not None:
            await introspect.close()
        await service.close()
        if sanitizer is not None:
            await sanitizer.stop()
    if not args.quiet:
        print(f"repro-serve: {service.counters}", flush=True)
    return 0


def serve_main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_serve_parser().parse_args(argv)
    # File writes happen here, after the loop has shut down: sync I/O
    # in the coroutine would block the event loop (RL013).
    started: list[StreamingService] = []
    try:
        status = asyncio.run(_serve(args, started))
    except KeyboardInterrupt:
        status = 0
    for service in started:
        _write_service_outputs(service, args)
        if args.trace and service.spans is not None:
            export_chrome_trace(pathlib.Path(args.trace),
                                spans=merge_spans(service.spans))
    return status


# ------------------------------------------------------------------- load


def _build_load_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-load",
        description="async load-generator fleet for repro-serve")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=9653)
    parser.add_argument("--sessions", type=int, default=10)
    parser.add_argument("--duration", type=float, default=10.0,
                        help="per-session streaming time in seconds")
    parser.add_argument("--spread", type=float, default=1.0,
                        help="stagger session starts across this many s")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--loss", type=float, default=0.0,
                        help="i.i.d. receive loss probability")
    parser.add_argument("--delay", type=float, default=0.0,
                        help="fixed extra one-way delay in seconds")
    parser.add_argument("--jitter", type=float, default=0.0,
                        help="uniform extra delay in [0, jitter] s")
    parser.add_argument("--rate-limit", type=float, default=None,
                        help="token-bucket rate in bytes/s")
    parser.add_argument("--self-serve", action="store_true",
                        help="start an in-process server on an "
                             "ephemeral port (single-command soak)")
    parser.add_argument("--max-sessions", type=int, default=512)
    _add_qa_args(parser)
    parser.add_argument("--flight", metavar="PATH",
                        help="with --self-serve: decision JSONL")
    parser.add_argument("--metrics-out", metavar="PATH",
                        help="with --self-serve: Prometheus text")
    _add_observability_args(parser)
    parser.add_argument("--out", metavar="PATH",
                        help="write the plain-text report here too")
    parser.add_argument("--json", metavar="PATH",
                        help="write the aggregate summary as JSON")
    parser.add_argument("--expect-zero-stalls", action="store_true",
                        help="exit non-zero if any session stalled "
                             "(CI gate for unimpaired links)")
    parser.add_argument("--sanitize", action="store_true",
                        help="run the event-loop stall sanitizer "
                             "(lag histogram + leaked-task census)")
    parser.add_argument("--max-lag-p99", type=float, default=None,
                        metavar="SECONDS",
                        help="with --sanitize: exit non-zero if the "
                             "p99 callback lag exceeds this bound")
    parser.add_argument("--quiet", action="store_true")
    return parser


async def _load(
    args: argparse.Namespace,
) -> tuple[int, str, dict, Optional[StreamingService], LoadFleet]:
    service: Optional[StreamingService] = None
    port = args.port
    if args.self_serve:
        service = await StreamingService.start(
            _service_config(args, port=0))
        port = service.port
    sanitizer: Optional[LoopSanitizer] = None
    # --introspect arms the sanitizer too (like repro-serve) so
    # /healthz always has lag data to gate on.
    if args.sanitize or (args.introspect is not None
                         and service is not None):
        sanitizer = LoopSanitizer(
            metrics=service.metrics if service is not None else None)
        await sanitizer.start()
    introspect: Optional[IntrospectionServer] = None
    if args.introspect is not None and service is None:
        print("repro-load: --introspect needs --self-serve (it "
              "introspects the in-process server); ignoring",
              file=sys.stderr)
    elif args.introspect is not None and service is not None:
        introspect = await IntrospectionServer.start(
            service, sanitizer=sanitizer,
            host=args.host, port=args.introspect,
            max_lag_p99=args.max_lag_p99)
        if not args.quiet:
            print(f"repro-load: introspection on "
                  f"http://{args.host}:{introspect.port}", flush=True)
    fleet = LoadFleet(
        args.host, port,
        sessions=args.sessions,
        duration=args.duration,
        impairment=ImpairmentConfig(
            loss_rate=args.loss,
            delay=args.delay,
            jitter=args.jitter,
            rate_limit=args.rate_limit,
        ),
        seed=args.seed,
        spread=args.spread,
        trace_spans=args.trace is not None,
    )
    try:
        results = await fleet.run()
    finally:
        if introspect is not None:
            await introspect.close()
        if service is not None:
            await service.close()
        # Stop after close so leaked session tasks are visible to the
        # census but the heartbeat itself never counts as a leak.
        if sanitizer is not None:
            await sanitizer.stop()

    scenario = fleet_result(results, args.duration)
    summary = fleet_summary(results, scenario)
    if service is not None:
        lat = service.feedback_latencies
        summary["feedback_p50"] = percentile(lat, 50.0)
        summary["feedback_p99"] = percentile(lat, 99.0)
        summary["queue_drops"] = service.counters["queue_drops"]
        leaked = [t for t in asyncio.all_tasks()
                  if t is not asyncio.current_task()]
        summary["leaked_tasks"] = len(leaked)
    san_report: Optional[dict] = None
    if sanitizer is not None:
        san_report = sanitizer.report()
        summary["lag_p50"] = san_report["lag_p50"]
        summary["lag_p99"] = san_report["lag_p99"]
        summary["lag_max"] = san_report["lag_max"]
        summary["sanitizer_stalls"] = san_report["stalls"]
        summary["sanitizer_leaked_tasks"] = san_report["leaked_tasks"]
    report = render_fleet_report(results, args.duration,
                                 scenario=scenario)
    if not args.quiet:
        print(report)

    status = 0
    if summary["failed"]:
        print(f"repro-load: {summary['failed']} sessions failed",
              file=sys.stderr)
        status = 1
    if args.expect_zero_stalls and summary["stalls"]:
        print(f"repro-load: expected zero stalls, saw "
              f"{summary['stalls']}", file=sys.stderr)
        status = 1
    if service is not None and summary["leaked_tasks"]:
        print(f"repro-load: {summary['leaked_tasks']} tasks leaked "
              f"after shutdown", file=sys.stderr)
        status = 1
    if san_report is not None:
        if (args.max_lag_p99 is not None
                and san_report["lag_p99"] > args.max_lag_p99):
            print(f"repro-load: loop lag p99 "
                  f"{san_report['lag_p99'] * 1e3:.2f} ms exceeds "
                  f"--max-lag-p99 {args.max_lag_p99 * 1e3:.2f} ms",
                  file=sys.stderr)
            status = 1
        if san_report["leaked_tasks"]:
            names = ", ".join(san_report["leaked_task_names"])
            print(f"repro-load: sanitizer census found "
                  f"{san_report['leaked_tasks']} leaked task(s): {names}",
                  file=sys.stderr)
            status = 1
    return status, report, summary, service, fleet


def load_main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_load_parser().parse_args(argv)
    try:
        status, report, summary, service, fleet = asyncio.run(_load(args))
    except KeyboardInterrupt:
        return 1
    # File writes happen here, after the loop has shut down: sync I/O
    # in the coroutine would block the event loop (RL013).
    if args.out:
        pathlib.Path(args.out).write_text(report)
    if args.json:
        pathlib.Path(args.json).write_text(
            json.dumps(summary, sort_keys=True, indent=2) + "\n")
    if service is not None:
        _write_service_outputs(service, args)
    if args.trace:
        # One document holding both halves of every distributed trace:
        # client spans from the fleet recorder, server spans from the
        # service's (when --self-serve ran one in-process).
        spans = (merge_spans(fleet.spans, service.spans)
                 if service is not None else merge_spans(fleet.spans))
        export_chrome_trace(pathlib.Path(args.trace), spans=spans)
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(load_main())
