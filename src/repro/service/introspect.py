"""Live HTTP introspection for a running :class:`StreamingService`.

A tiny stdlib-asyncio HTTP/1.1 listener that shares the service's event
loop and answers three read-only endpoints while sessions stream:

- ``GET /metrics``  — the service's
  :class:`~repro.telemetry.metrics.MetricsRegistry` in the Prometheus
  text exposition format (404 when the service runs without metrics).
- ``GET /sessions`` — a JSON snapshot of every live session: adapter
  layer count, pacer rate and srtt, the server-side buffer estimate,
  send/drop counters and the session's trace id, plus service-level
  counters and span-recorder occupancy.
- ``GET /healthz``  — 200 when the service is accepting traffic and the
  loop sanitizer (when attached) is inside its lag budget, 503
  otherwise; the body carries the sanitizer's live report either way.

Everything is computed on demand from live objects — no background
task, no state of its own — so attaching the listener never perturbs
pacing. Each connection serves one request and closes (``Connection:
close``), which keeps the handler free of keep-alive bookkeeping.
"""

from __future__ import annotations

import asyncio
import json
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.sanitizer import LoopSanitizer
    from repro.service.server import StreamingService

#: Longest request head (request line + headers) we bother reading.
_MAX_HEAD = 8192
_PROM_TYPE = "text/plain; version=0.0.4; charset=utf-8"
_JSON_TYPE = "application/json; charset=utf-8"

_JSON_SEPARATORS = (",", ":")


def _json_bytes(payload: dict) -> bytes:
    # One small document per introspection request; never the data path.
    return json.dumps(payload, sort_keys=True,
                      separators=_JSON_SEPARATORS).encode()


class IntrospectionServer:
    """Serves ``/metrics``, ``/sessions`` and ``/healthz`` for a service.

    Usage::

        introspect = await IntrospectionServer.start(service, port=0)
        ... curl http://127.0.0.1:{introspect.port}/metrics ...
        await introspect.close()

    Args:
        service: the :class:`~repro.service.server.StreamingService`
            being introspected (must outlive this listener).
        sanitizer: optional :class:`~repro.service.sanitizer.
            LoopSanitizer`; its live lag report feeds ``/healthz``.
        max_lag_p99: when set, ``/healthz`` degrades to 503 once the
            sanitizer's p99 callback lag exceeds this many seconds.
    """

    def __init__(self, service: "StreamingService",
                 sanitizer: Optional["LoopSanitizer"] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 max_lag_p99: Optional[float] = None) -> None:
        self.service = service
        self.sanitizer = sanitizer
        self.host = host
        self._port = port
        self.max_lag_p99 = max_lag_p99
        self.requests_served = 0
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------ lifecycle

    @classmethod
    async def start(cls, service: "StreamingService",
                    sanitizer: Optional["LoopSanitizer"] = None,
                    host: str = "127.0.0.1", port: int = 0,
                    max_lag_p99: Optional[float] = None,
                    ) -> "IntrospectionServer":
        """Bind the listener on the running loop and return it."""
        self = cls(service, sanitizer=sanitizer, host=host, port=port,
                   max_lag_p99=max_lag_p99)
        self._server = await asyncio.start_server(
            self._handle, host=host, port=port)
        return self

    @property
    def port(self) -> int:
        """The bound TCP port (resolves ``port=0`` to the real one)."""
        if self._server is not None and self._server.sockets:
            return int(self._server.sockets[0].getsockname()[1])
        return self._port

    async def close(self) -> None:
        # Detach before the await so a concurrent close sees None and
        # no write spans the suspension (RL014).
        server, self._server = self._server, None
        if server is None:
            return
        server.close()
        await server.wait_closed()

    # ------------------------------------------------------------- handler

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
                ConnectionError):
            writer.close()
            return
        if len(head) > _MAX_HEAD:
            await self._respond(writer, 400, _JSON_TYPE,
                                _json_bytes({"error": "request too large"}))
            return
        request_line = head.split(b"\r\n", 1)[0].decode(
            "latin-1", "replace")
        parts = request_line.split()
        if len(parts) != 3 or parts[0] != "GET":
            await self._respond(writer, 405, _JSON_TYPE,
                                _json_bytes({"error": "GET only"}))
            return
        path = parts[1].split("?", 1)[0]
        status, ctype, body = self._dispatch(path)
        self.requests_served += 1
        await self._respond(writer, status, ctype, body)

    def _dispatch(self, path: str) -> tuple[int, str, bytes]:
        if path == "/metrics":
            return self._metrics()
        if path == "/sessions":
            return 200, _JSON_TYPE, _json_bytes(self.sessions_snapshot())
        if path == "/healthz":
            ok, report = self.health()
            return (200 if ok else 503), _JSON_TYPE, _json_bytes(report)
        return 404, _JSON_TYPE, _json_bytes(
            {"error": f"no such endpoint: {path}",
             "endpoints": ["/metrics", "/sessions", "/healthz"]})

    @staticmethod
    async def _respond(writer: asyncio.StreamWriter, status: int,
                       ctype: str, body: bytes) -> None:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed",
                  503: "Service Unavailable"}.get(status, "OK")
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n".encode("latin-1"))
        writer.write(body)
        try:
            await writer.drain()
        except ConnectionError:
            pass
        writer.close()

    # ----------------------------------------------------------- endpoints

    def _metrics(self) -> tuple[int, str, bytes]:
        metrics = self.service.metrics
        if metrics is None:
            return 404, _JSON_TYPE, _json_bytes(
                {"error": "service runs without a metrics registry"})
        return 200, _PROM_TYPE, metrics.to_prometheus().encode()

    def sessions_snapshot(self) -> dict:
        """The live per-session state, JSON-shaped."""
        service = self.service
        now = service.now()
        sessions = []
        for session_id in sorted(service.sessions):
            session = service.sessions[session_id]
            adapter = session.core.adapter
            active = adapter.active_layers
            sessions.append({
                "id": session_id,
                "label": session.label,
                "age": round(now - session.started, 6),
                "active_layers": active,
                "rate": round(session.pacer.rate, 3),
                "srtt": round(session.pacer.srtt, 6),
                "buffered_bytes": round(
                    adapter.buffers.total(active), 3),
                "data_sent": session.data_sent,
                "queue_drops": session.queue_drops,
                "done": session.done,
                "trace_id": (session.trace.trace_id
                             if session.trace is not None else None),
            })
        snapshot: dict = {
            "now": round(now, 6),
            "sessions": sessions,
            "counters": dict(service.counters),
        }
        spans = service.spans
        if spans is not None:
            snapshot["spans"] = {
                "buffered": len(spans),
                "recorded": spans.total_recorded,
                "evicted": spans.evicted,
            }
        return snapshot

    def health(self) -> tuple[bool, dict]:
        """(healthy?, report) — the gate behind ``/healthz``."""
        service = self.service
        serving = service.serving
        report: dict = {
            "serving": serving,
            "sessions": len(service.sessions),
        }
        ok = serving
        if self.sanitizer is not None:
            sanitizer_report = self.sanitizer.report()
            report["sanitizer"] = sanitizer_report
            if (self.max_lag_p99 is not None
                    and sanitizer_report["lag_samples"] > 0
                    and sanitizer_report["lag_p99"] > self.max_lag_p99):
                ok = False
            if sanitizer_report["leaked_tasks"] > 0:
                ok = False
        report["ok"] = ok
        return ok, report
