"""repro: Quality Adaptation for Congestion Controlled Video Playback.

A full reproduction of Rejaie, Handley & Estrin (SIGCOMM 1999): layered
video quality adaptation over the RAP congestion controller, together with
the packet-level simulation substrate, baselines, and the experiment
harnesses that regenerate every table and figure of the paper.

Quick start::

    from repro import QAConfig, build_experiment

    exp = build_experiment(k_max=2, duration=40.0)
    result = exp.run()
    print(result.summary())

Package map:

- :mod:`repro.core`       -- the quality adaptation mechanism (the paper's
  contribution): formulas, optimal buffer states, filling/draining,
  add/drop rules, metrics.
- :mod:`repro.sim`        -- discrete-event network simulator (the ns-2
  stand-in).
- :mod:`repro.transport`  -- RAP, Sack-style TCP, CBR.
- :mod:`repro.media`      -- layered stream model and client playout.
- :mod:`repro.server`     -- server/client/session wiring.
- :mod:`repro.baselines`  -- the strawmen the paper argues against.
- :mod:`repro.analysis`   -- time-series reporting and ASCII plots.
- :mod:`repro.experiments`-- one module per paper table/figure.
"""

from repro.core import QAConfig, QualityAdapter, QualityMetrics
from repro.core.states import BufferState, StateSequence
from repro.media import LayeredStream
from repro.server import StreamingSession
from repro.sim import Simulator, Dumbbell, DumbbellConfig

__version__ = "1.0.0"

__all__ = [
    "QAConfig",
    "QualityAdapter",
    "QualityMetrics",
    "BufferState",
    "StateSequence",
    "LayeredStream",
    "StreamingSession",
    "Simulator",
    "Dumbbell",
    "DumbbellConfig",
    "build_experiment",
    "__version__",
]


def build_experiment(**kwargs):
    """Convenience constructor for the paper's T1 workload.

    Lazy import so the light-weight core can be used without pulling in
    the experiment harness.
    """
    from repro.experiments.common import PaperWorkload

    return PaperWorkload(**kwargs)
