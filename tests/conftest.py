"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import QAConfig
from repro.sim.engine import Simulator
from repro.sim.topology import Dumbbell, DumbbellConfig


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def qa_config() -> QAConfig:
    """A small, fast default QA configuration for unit tests."""
    return QAConfig(
        layer_rate=5000.0,
        max_layers=4,
        k_max=2,
        packet_size=500,
        startup_delay=0.5,
    )


@pytest.fixture
def dumbbell(sim) -> Dumbbell:
    """A two-pair dumbbell with a 50 KB/s bottleneck."""
    return Dumbbell(sim, DumbbellConfig(
        n_pairs=2,
        bottleneck_bandwidth=50_000.0,
        queue_capacity_packets=20,
    ))
