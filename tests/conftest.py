"""Shared fixtures and CLI options for the test suite.

Marker conventions:

- ``slow``: multi-minute work, skipped unless ``--run-slow`` (or
  ``--update-golden``, which must refresh the expensive artifacts too).
- ``differential``: packet-vs-fluid backend agreement tests
  (``tests/differential/``). The paper-figure subset is fast and always
  runs; the hypothesis fuzz sweep is additionally marked ``slow``, so
  ``--run-slow`` runs the full sweep — mirroring how the golden suite
  splits its FAST/SLOW artifact lists. Select just this suite with
  ``pytest -m differential``.
"""

from __future__ import annotations

import pytest

from repro.core.config import QAConfig
from repro.sim.engine import Simulator
from repro.sim.topology import Dumbbell, DumbbellConfig


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite tests/golden/ snapshots from freshly rendered "
             "experiment output instead of asserting against them")
    parser.addoption(
        "--run-slow", action="store_true", default=False,
        help="also run tests marked slow (multi-minute golden "
             "regenerations)")


def pytest_collection_modifyitems(config, items):
    # --update-golden implies running the slow golden tests: an update
    # that skipped the expensive artifacts would leave stale snapshots.
    if config.getoption("--run-slow") or config.getoption("--update-golden"):
        return
    skip_slow = pytest.mark.skip(reason="slow: pass --run-slow to run")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def qa_config() -> QAConfig:
    """A small, fast default QA configuration for unit tests."""
    return QAConfig(
        layer_rate=5000.0,
        max_layers=4,
        k_max=2,
        packet_size=500,
        startup_delay=0.5,
    )


@pytest.fixture
def dumbbell(sim) -> Dumbbell:
    """A two-pair dumbbell with a 50 KB/s bottleneck."""
    return Dumbbell(sim, DumbbellConfig(
        n_pairs=2,
        bottleneck_bandwidth=50_000.0,
        queue_capacity_packets=20,
    ))
