"""Unit tests for flow monitoring and fairness statistics."""

import pytest

from repro.sim.flowmon import FlowMonitor, jain_index
from repro.sim.topology import Dumbbell, DumbbellConfig
from repro.transport import RapSink, RapSource, TcpSink, TcpSource


class TestJainIndex:
    def test_perfectly_fair(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_one_hog(self):
        assert jain_index([10.0, 0.0, 0.0]) == pytest.approx(1 / 3)

    def test_empty_is_fair(self):
        assert jain_index([]) == 1.0

    def test_all_zero_is_fair(self):
        assert jain_index([0.0, 0.0]) == 1.0

    def test_bounds(self):
        idx = jain_index([1.0, 2.0, 3.0, 4.0])
        assert 1 / 4 <= idx <= 1.0


class TestFlowMonitor:
    def test_requires_connected_link(self, sim):
        from repro.sim.link import Link
        link = Link(sim, 1000, 0.01)
        with pytest.raises(ValueError):
            FlowMonitor(sim, link)

    def test_counts_per_flow_bytes(self, sim):
        net = Dumbbell(sim, DumbbellConfig(
            n_pairs=2, bottleneck_bandwidth=50_000,
            queue_capacity_packets=20))
        monitor = FlowMonitor(sim, net.bottleneck)
        sources = []
        for i in range(2):
            src, dst = net.pair(i)
            source = RapSource(sim, src, dst.name, packet_size=500)
            RapSink(sim, dst, src.name, source.flow_id)
            sources.append(source)
        sim.run(until=10.0)
        assert set(monitor.flows()) == {s.flow_id for s in sources}
        for s in sources:
            assert monitor.bytes_by_flow[s.flow_id] > 0
            assert monitor.mean_rate(s.flow_id) > 0

    def test_throughput_series_sampled(self, sim):
        net = Dumbbell(sim, DumbbellConfig(
            n_pairs=1, bottleneck_bandwidth=50_000))
        monitor = FlowMonitor(sim, net.bottleneck, sample_period=0.5)
        src, dst = net.pair(0)
        source = RapSource(sim, src, dst.name, packet_size=500)
        RapSink(sim, dst, src.name, source.flow_id)
        sim.run(until=5.0)
        series = monitor.throughput[source.flow_id]
        assert len(series) >= 8

    def test_rap_and_tcp_share_reasonably(self, sim):
        """The fairness claim behind the whole paper: RAP is
        TCP-friendly enough that neither protocol starves."""
        net = Dumbbell(sim, DumbbellConfig(
            n_pairs=4, bottleneck_bandwidth=100_000,
            queue_capacity_packets=30))
        monitor = FlowMonitor(sim, net.bottleneck)
        ids = []
        for i in range(2):
            src, dst = net.pair(i)
            source = RapSource(sim, src, dst.name, packet_size=500,
                               srtt_init=0.2 + 0.01 * i)
            RapSink(sim, dst, src.name, source.flow_id)
            ids.append(source.flow_id)
        for i in range(2, 4):
            src, dst = net.pair(i)
            source = TcpSource(sim, src, dst.name, start=0.05 * i)
            TcpSink(sim, dst, src.name, source.flow_id)
            ids.append(source.flow_id)
        sim.run(until=40.0)
        assert monitor.fairness(ids) > 0.5

    def test_ack_packets_not_counted(self, sim):
        net = Dumbbell(sim, DumbbellConfig(
            n_pairs=1, bottleneck_bandwidth=50_000))
        # Monitor the *reverse* bottleneck: it carries only ACKs.
        monitor = FlowMonitor(sim, net.reverse_bottleneck)
        src, dst = net.pair(0)
        source = RapSource(sim, src, dst.name, packet_size=500)
        RapSink(sim, dst, src.name, source.flow_id)
        sim.run(until=5.0)
        assert monitor.bytes_by_flow == {}

    def test_stop_halts_sampling(self, sim):
        net = Dumbbell(sim, DumbbellConfig(
            n_pairs=1, bottleneck_bandwidth=50_000))
        monitor = FlowMonitor(sim, net.bottleneck, sample_period=0.5)
        src, dst = net.pair(0)
        source = RapSource(sim, src, dst.name, packet_size=500)
        RapSink(sim, dst, src.name, source.flow_id)
        sim.run(until=2.0)
        monitor.stop()
        counts = {k: len(v) for k, v in monitor.throughput.items()}
        sim.run(until=4.0)
        assert {k: len(v) for k, v in monitor.throughput.items()} \
            == counts
