"""Unit tests for time series, samplers and tracers."""

import pytest

from repro.sim.trace import PeriodicSampler, TimeSeries, Tracer


class TestTimeSeries:
    def test_record_and_len(self):
        ts = TimeSeries("x")
        ts.record(0.0, 1.0)
        ts.record(1.0, 2.0)
        assert len(ts) == 2

    def test_time_must_not_go_backwards(self):
        ts = TimeSeries("x")
        ts.record(1.0, 1.0)
        with pytest.raises(ValueError):
            ts.record(0.5, 2.0)

    def test_equal_times_allowed(self):
        ts = TimeSeries("x")
        ts.record(1.0, 1.0)
        ts.record(1.0, 2.0)
        assert ts.values == [1.0, 2.0]

    def test_value_at_step_interpolation(self):
        ts = TimeSeries("x")
        ts.record(0.0, 10.0)
        ts.record(2.0, 20.0)
        assert ts.value_at(1.0) == 10.0
        assert ts.value_at(2.0) == 20.0
        assert ts.value_at(5.0) == 20.0

    def test_value_at_before_first_sample(self):
        ts = TimeSeries("x")
        ts.record(1.0, 5.0)
        assert ts.value_at(0.5, default=-1.0) == -1.0

    def test_window(self):
        ts = TimeSeries("x")
        for t in range(5):
            ts.record(float(t), float(t))
        w = ts.window(1.0, 3.0)
        assert w.times == [1.0, 2.0, 3.0]

    def test_statistics(self):
        ts = TimeSeries("x")
        for t, v in [(0, 1.0), (1, 3.0), (2, 2.0)]:
            ts.record(float(t), v)
        assert ts.mean() == pytest.approx(2.0)
        assert ts.max() == 3.0
        assert ts.min() == 1.0
        assert ts.final() == 2.0

    def test_statistics_on_empty_series(self):
        ts = TimeSeries("x")
        assert ts.mean() == 0.0
        assert ts.max() == 0.0
        assert ts.final() == 0.0

    def test_time_average_weights_by_duration(self):
        ts = TimeSeries("x")
        ts.record(0.0, 0.0)  # holds for 9 s
        ts.record(9.0, 10.0)  # holds for 1 s
        ts.record(10.0, 10.0)
        assert ts.time_average() == pytest.approx(1.0)

    def test_change_count(self):
        ts = TimeSeries("x")
        for t, v in [(0, 1.0), (1, 1.0), (2, 2.0), (3, 1.0)]:
            ts.record(float(t), v)
        assert ts.change_count() == 2

    def test_change_count_with_tolerance(self):
        ts = TimeSeries("x")
        for t, v in [(0, 1.0), (1, 1.05), (2, 3.0)]:
            ts.record(float(t), v)
        assert ts.change_count(tolerance=0.1) == 1

    def test_derivative(self):
        ts = TimeSeries("x")
        ts.record(0.0, 0.0)
        ts.record(2.0, 10.0)
        d = ts.derivative()
        assert d.values == [pytest.approx(5.0)]


class TestPeriodicSampler:
    def test_fires_at_period(self, sim):
        hits = []
        PeriodicSampler(sim, 0.5, hits.append)
        sim.run(until=2.0)
        assert hits == [0.0, 0.5, 1.0, 1.5, 2.0]

    def test_start_offset(self, sim):
        hits = []
        PeriodicSampler(sim, 1.0, hits.append, start=0.25)
        sim.run(until=2.0)
        assert hits == [0.25, 1.25]

    def test_stop(self, sim):
        hits = []
        sampler = PeriodicSampler(sim, 0.5, hits.append)
        sim.schedule(1.1, sampler.stop)
        sim.run(until=3.0)
        assert hits == [0.0, 0.5, 1.0]

    def test_rejects_nonpositive_period(self, sim):
        with pytest.raises(ValueError):
            PeriodicSampler(sim, 0.0, lambda t: None)


class TestTracer:
    def test_get_returns_recorded_series(self):
        tracer = Tracer()
        tracer.record("rate", 0.0, 1.0)
        ts = tracer.get("rate")
        assert ts is tracer.get("rate")

    def test_get_missing_raises_contextual_keyerror(self):
        tracer = Tracer()
        tracer.record("rate", 0.0, 1.0)
        tracer.record("layers", 0.0, 2.0)
        with pytest.raises(KeyError) as exc:
            tracer.get("ratee")
        message = str(exc.value)
        assert "ratee" in message
        assert "layers, rate" in message

    def test_get_missing_on_empty_tracer(self):
        with pytest.raises(KeyError, match="<none>"):
            Tracer().get("rate")

    def test_record_creates_series(self):
        tracer = Tracer()
        tracer.record("x", 1.0, 2.0)
        assert tracer.get("x").values == [2.0]

    def test_to_csv_unknown_name_raises_contextual_keyerror(self):
        tracer = Tracer()
        tracer.record("a", 0.0, 1.0)
        with pytest.raises(KeyError, match="available: a"):
            tracer.to_csv(names=["zz"])

    def test_event_log(self):
        tracer = Tracer()
        tracer.log_event(1.0, "drop", layer=2)
        tracer.log_event(2.0, "add", layer=2)
        assert tracer.events_of("drop") == [(1.0, {"layer": 2})]

    def test_to_csv_merges_series(self):
        tracer = Tracer()
        tracer.record("a", 0.0, 1.0)
        tracer.record("b", 1.0, 2.0)
        csv_text = tracer.to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "time,a,b"
        assert len(lines) == 3  # header + two distinct times

    def test_to_csv_selected_series(self):
        tracer = Tracer()
        tracer.record("a", 0.0, 1.0)
        tracer.record("b", 0.0, 2.0)
        csv_text = tracer.to_csv(names=["b"])
        assert csv_text.splitlines()[0] == "time,b"
