"""Unit tests for hosts and routers."""

import pytest

from repro.sim.link import Link
from repro.sim.node import Host, Router
from repro.sim.packet import Packet


def wire(sim, src, dst):
    """Connect src -> dst with a fast link; returns the link."""
    link = Link(sim, bandwidth=1e6, delay=0.001)
    link.connect(dst.receive)
    src.set_default_route(link)
    return link


class Collector:
    def __init__(self):
        self.packets = []

    def receive(self, packet):
        self.packets.append(packet)


class TestRouting:
    def test_forward_uses_specific_route(self, sim):
        router = Router(sim, "r")
        a, b = Host(sim, "a"), Host(sim, "b")
        link_a = Link(sim, 1e6, 0.0)
        link_a.connect(a.receive)
        link_b = Link(sim, 1e6, 0.0)
        link_b.connect(b.receive)
        router.add_route("a", link_a)
        router.add_route("b", link_b)
        handler = Collector()
        b.attach(7, handler)
        router.receive(Packet(flow_id=7, seq=0, size=100, dst="b"))
        sim.run()
        assert len(handler.packets) == 1

    def test_default_route_fallback(self, sim):
        router = Router(sim, "r")
        b = Host(sim, "b")
        link = wire(sim, router, b)
        router.set_default_route(link)
        handler = Collector()
        b.attach(1, handler)
        router.receive(Packet(flow_id=1, seq=0, size=100, dst="b"))
        sim.run()
        assert len(handler.packets) == 1

    def test_unroutable_raises(self, sim):
        router = Router(sim, "r")
        with pytest.raises(RuntimeError):
            router.forward(Packet(flow_id=1, seq=0, size=10, dst="nowhere"))


class TestHost:
    def test_demultiplex_by_flow_id(self, sim):
        host = Host(sim, "h")
        h1, h2 = Collector(), Collector()
        host.attach(1, h1)
        host.attach(2, h2)
        host.receive(Packet(flow_id=1, seq=0, size=10, dst="h"))
        host.receive(Packet(flow_id=2, seq=0, size=10, dst="h"))
        host.receive(Packet(flow_id=2, seq=1, size=10, dst="h"))
        assert len(h1.packets) == 1
        assert len(h2.packets) == 2

    def test_duplicate_attach_rejected(self, sim):
        host = Host(sim, "h")
        host.attach(1, Collector())
        with pytest.raises(ValueError):
            host.attach(1, Collector())

    def test_detach_allows_reattach(self, sim):
        host = Host(sim, "h")
        host.attach(1, Collector())
        host.detach(1)
        host.attach(1, Collector())

    def test_stray_packets_counted(self, sim):
        host = Host(sim, "h")
        host.receive(Packet(flow_id=99, seq=0, size=10, dst="h"))
        assert host.stray_packets == 1

    def test_send_stamps_source(self, sim):
        host = Host(sim, "h")
        sink = Host(sim, "s")
        wire(sim, host, sink)
        collector = Collector()
        sink.attach(3, collector)
        host.send(Packet(flow_id=3, seq=0, size=10, dst="s"))
        sim.run()
        assert collector.packets[0].src == "h"

    def test_packet_for_other_host_is_forwarded(self, sim):
        host = Host(sim, "h")
        other = Host(sim, "o")
        wire(sim, host, other)
        collector = Collector()
        other.attach(1, collector)
        host.receive(Packet(flow_id=1, seq=0, size=10, dst="o"))
        sim.run()
        assert len(collector.packets) == 1
