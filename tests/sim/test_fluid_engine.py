"""Unit tests for the analytic fluid engine."""

from __future__ import annotations

import pytest

from repro.core.config import QAConfig
from repro.core.fluid import ScriptedAimd
from repro.core.metrics import DropCause
from repro.sim.fluid import FluidEngine


def make_engine(initial_rate=3750.0, slope=900.0, backoffs=(28.0,),
                duration=40.0, sample_period=0.02, on_event=None,
                max_rate=15_625.0, **config_overrides):
    defaults = dict(layer_rate=2500.0, max_layers=5, k_max=1,
                    packet_size=200, startup_delay=0.5)
    defaults.update(config_overrides)
    config = QAConfig(**defaults)
    aimd = ScriptedAimd(initial_rate, slope, backoff_times=backoffs,
                        max_rate=max_rate)
    return FluidEngine(config, aimd, duration=duration,
                       sample_period=sample_period, on_event=on_event)


def test_rejects_nonpositive_duration():
    with pytest.raises(ValueError):
        make_engine(duration=0.0)


def test_filling_climbs_the_add_ladder_in_order():
    result = make_engine().run()
    added_layers = [layer for _, layer in result.metrics.adds]
    assert added_layers == sorted(added_layers)
    assert result.final_layers == 5
    # Closed-form epochs, not sampler steps: a 40 s figure-5 style run
    # resolves in a handful of epochs.
    assert result.epochs < 50


def test_deep_backoffs_trigger_rule_drops():
    result = make_engine(initial_rate=11_000.0, slope=800.0,
                         backoffs=(14.0, 15.0, 16.5),
                         max_rate=12_500.0,
                         max_layers=4, k_max=2).run()
    assert result.metrics.drops, "expected at least one drop"
    assert all(ev.cause is DropCause.RULE for ev in result.metrics.drops)
    first = result.metrics.drops[0]
    assert 14.0 <= first.time <= 18.0
    assert result.discarded_bytes >= 0.0


def test_starved_base_layer_stalls_and_accounts_shortfall():
    # Arrivals at ~600 B/s against a 2500 B/s base layer: playout must
    # stall and the unmet consumption must be tracked, not invented.
    result = make_engine(initial_rate=600.0, slope=1.0, backoffs=(),
                         duration=20.0).run()
    assert result.metrics.stall_count >= 1
    assert result.stall_shortfall_bytes > 0.0
    assert result.metrics.stall_time > 0.0
    assert result.final_layers == 1


def test_conservation_closes_the_byte_ledger():
    for engine in (make_engine(),
                   make_engine(initial_rate=11_000.0, slope=800.0,
                               backoffs=(14.0, 15.0, 16.5),
                               max_rate=12_500.0,
                               max_layers=4, k_max=2)):
        result = engine.run()
        assert abs(result.conservation_error) <= max(
            1e-6 * result.sent_bytes, 1e-6)


def test_event_hook_sees_the_decision_stream():
    events = []
    result = make_engine(
        on_event=lambda t, kind, fields: events.append((t, kind))).run()
    kinds = {kind for _, kind in events}
    assert "playout_start" in kinds
    assert "add" in kinds
    assert len([k for _, k in events if k == "add"]) == len(
        result.metrics.adds)
    times = [t for t, _ in events]
    assert times == sorted(times)


def test_summary_reports_trace_derived_means():
    summary = make_engine().run().summary()
    assert summary["sent_bytes"] > 0
    assert 1.0 <= summary["mean_layers"] <= 5.0
    assert summary["mean_rate"] > 0
