"""Unit tests for the link model (serialization + propagation)."""

import pytest

from repro.sim.link import Link
from repro.sim.packet import Packet
from repro.sim.queues import DropTailQueue


def make_packet(seq=0, size=1000):
    return Packet(flow_id=1, seq=seq, size=size)


@pytest.fixture
def received():
    return []


@pytest.fixture
def link(sim, received):
    # 10_000 B/s, 50 ms propagation: a 1000 B packet takes 0.1 s to
    # serialize and arrives at 0.15 s.
    lk = Link(sim, bandwidth=10_000, delay=0.05, name="test")
    lk.connect(lambda p: received.append((sim.now, p)))
    return lk


class TestValidation:
    def test_rejects_zero_bandwidth(self, sim):
        with pytest.raises(ValueError):
            Link(sim, bandwidth=0, delay=0.01)

    def test_rejects_negative_delay(self, sim):
        with pytest.raises(ValueError):
            Link(sim, bandwidth=1000, delay=-1)

    def test_send_without_receiver_raises(self, sim):
        lk = Link(sim, bandwidth=1000, delay=0.01)
        with pytest.raises(RuntimeError):
            lk.send(make_packet())


class TestTiming:
    def test_arrival_time_is_serialization_plus_propagation(
            self, sim, link, received):
        link.send(make_packet(size=1000))
        sim.run()
        assert received[0][0] == pytest.approx(0.1 + 0.05)

    def test_arrival_scales_with_size(self, sim, link, received):
        link.send(make_packet(size=500))
        sim.run()
        assert received[0][0] == pytest.approx(0.05 + 0.05)

    def test_back_to_back_packets_serialize_sequentially(
            self, sim, link, received):
        link.send(make_packet(0))
        link.send(make_packet(1))
        sim.run()
        times = [t for t, _ in received]
        assert times[0] == pytest.approx(0.15)
        assert times[1] == pytest.approx(0.25)  # waited for the first

    def test_idle_gap_resets_pipeline(self, sim, link, received):
        link.send(make_packet(0))
        sim.schedule(1.0, lambda: link.send(make_packet(1)))
        sim.run()
        assert received[1][0] == pytest.approx(1.15)

    def test_busy_flag(self, sim, link):
        link.send(make_packet())
        assert link.busy
        sim.run()
        assert not link.busy


class TestQueueInteraction:
    def test_overflow_drops_at_queue(self, sim, received):
        lk = Link(sim, bandwidth=1000, delay=0.0,
                  queue=DropTailQueue(capacity_packets=1), name="small")
        lk.connect(lambda p: received.append(p))
        assert lk.send(make_packet(0))  # starts transmitting immediately
        assert lk.send(make_packet(1))  # queued
        assert not lk.send(make_packet(2))  # queue full -> dropped
        sim.run()
        assert len(received) == 2
        assert lk.queue.drops == 1

    def test_ordering_preserved(self, sim, link, received):
        for i in range(5):
            link.send(make_packet(i))
        sim.run()
        assert [p.seq for _, p in received] == list(range(5))

    def test_forwarded_counters(self, sim, link):
        link.send(make_packet(size=700))
        link.send(make_packet(size=300))
        sim.run()
        assert link.packets_forwarded == 2
        assert link.bytes_forwarded == 1000
        assert link.utilization_bytes() == 1000
