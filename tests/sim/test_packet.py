"""Unit tests for the packet model."""

from repro.sim.packet import Packet, PacketType


class TestPacket:
    def test_defaults(self):
        p = Packet(flow_id=1, seq=0, size=1000)
        assert p.is_data()
        assert not p.is_ack()
        assert p.layer is None

    def test_ack_type(self):
        p = Packet(flow_id=1, seq=0, size=40, ptype=PacketType.ACK)
        assert p.is_ack()
        assert not p.is_data()

    def test_layer_meta(self):
        p = Packet(flow_id=1, seq=0, size=1000, meta={"layer": 2})
        assert p.layer == 2

    def test_uids_are_unique_and_monotone(self):
        a = Packet(flow_id=1, seq=0, size=1)
        b = Packet(flow_id=1, seq=1, size=1)
        assert b.uid > a.uid

    def test_meta_not_shared_between_instances(self):
        a = Packet(flow_id=1, seq=0, size=1)
        a.meta["x"] = 1
        b = Packet(flow_id=1, seq=1, size=1)
        assert "x" not in b.meta

    def test_repr_mentions_layer(self):
        p = Packet(flow_id=1, seq=5, size=1000, meta={"layer": 3})
        assert "L3" in repr(p)
        assert "seq=5" in repr(p)
