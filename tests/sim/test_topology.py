"""Unit tests for the dumbbell topology."""

import pytest

from repro.sim.packet import Packet
from repro.sim.topology import Dumbbell, DumbbellConfig


class Collector:
    def __init__(self):
        self.packets = []

    def receive(self, packet):
        self.packets.append(packet)


class TestConstruction:
    def test_rejects_zero_pairs(self, sim):
        with pytest.raises(ValueError):
            Dumbbell(sim, DumbbellConfig(n_pairs=0))

    def test_builds_requested_pairs(self, sim):
        net = Dumbbell(sim, DumbbellConfig(n_pairs=3))
        assert len(net.sources) == 3
        assert len(net.sinks) == 3

    def test_pair_accessor(self, sim):
        net = Dumbbell(sim, DumbbellConfig(n_pairs=2))
        src, dst = net.pair(1)
        assert src.name == "src1"
        assert dst.name == "dst1"

    def test_base_rtt(self, sim):
        cfg = DumbbellConfig(access_delay=0.005, bottleneck_delay=0.010)
        net = Dumbbell(sim, cfg)
        assert net.base_rtt == pytest.approx(0.04)


class TestForwardPath:
    def test_data_reaches_the_right_sink(self, sim, dumbbell):
        c0, c1 = Collector(), Collector()
        dumbbell.sinks[0].attach(1, c0)
        dumbbell.sinks[1].attach(2, c1)
        dumbbell.sources[0].send(
            Packet(flow_id=1, seq=0, size=500, dst="dst0"))
        dumbbell.sources[1].send(
            Packet(flow_id=2, seq=0, size=500, dst="dst1"))
        sim.run()
        assert len(c0.packets) == 1
        assert len(c1.packets) == 1

    def test_reverse_path_works(self, sim, dumbbell):
        collector = Collector()
        dumbbell.sources[0].attach(1, collector)
        dumbbell.sinks[0].send(
            Packet(flow_id=1, seq=0, size=40, dst="src0"))
        sim.run()
        assert len(collector.packets) == 1

    def test_one_way_latency_matches_config(self, sim, dumbbell):
        arrivals = []

        class Stamp:
            def receive(self, packet):
                arrivals.append(sim.now)

        dumbbell.sinks[0].attach(1, Stamp())
        dumbbell.sources[0].send(
            Packet(flow_id=1, seq=0, size=500, dst="dst0"))
        sim.run()
        cfg = dumbbell.config
        serialization = 500 / cfg.access_bandwidth * 2 \
            + 500 / cfg.bottleneck_bandwidth
        propagation = 2 * cfg.access_delay + cfg.bottleneck_delay
        assert arrivals[0] == pytest.approx(serialization + propagation)

    def test_bottleneck_drops_under_overload(self, sim):
        net = Dumbbell(sim, DumbbellConfig(
            n_pairs=1, bottleneck_bandwidth=10_000,
            queue_capacity_packets=2))
        net.sinks[0].attach(1, Collector())
        for seq in range(50):
            net.sources[0].send(
                Packet(flow_id=1, seq=seq, size=1000, dst="dst0"))
        sim.run()
        assert net.bottleneck.queue.drops > 0

    def test_cross_traffic_shares_bottleneck(self, sim, dumbbell):
        c0, c1 = Collector(), Collector()
        dumbbell.sinks[0].attach(1, c0)
        dumbbell.sinks[1].attach(2, c1)
        for seq in range(10):
            dumbbell.sources[0].send(
                Packet(flow_id=1, seq=seq, size=1000, dst="dst0"))
            dumbbell.sources[1].send(
                Packet(flow_id=2, seq=seq, size=1000, dst="dst1"))
        sim.run()
        # Everything fits (queue 20 >= 20 packets); both flows complete.
        assert len(c0.packets) == 10
        assert len(c1.packets) == 10
        assert dumbbell.left.packets_received == 20
