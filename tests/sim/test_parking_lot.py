"""Unit and integration tests for the parking-lot topology."""

import pytest

from repro.core.config import QAConfig
from repro.server.session import StreamingSession
from repro.sim.packet import Packet
from repro.sim.parking_lot import ParkingLot, ParkingLotConfig
from repro.transport import RapSink, RapSource, TcpSink, TcpSource


class Collector:
    def __init__(self):
        self.packets = []

    def receive(self, packet):
        self.packets.append(packet)


class TestConstruction:
    def test_rejects_zero_hops(self, sim):
        with pytest.raises(ValueError):
            ParkingLot(sim, ParkingLotConfig(n_hops=0))

    def test_counts(self, sim):
        lot = ParkingLot(sim, ParkingLotConfig(n_hops=3))
        assert len(lot.hops) == 3
        assert len(lot.routers) == 4
        assert len(lot.cross_sources) == 3

    def test_base_rtt(self, sim):
        lot = ParkingLot(sim, ParkingLotConfig(
            n_hops=2, hop_delay=0.01, access_delay=0.002))
        assert lot.base_rtt == pytest.approx(2 * (0.004 + 0.02))


class TestRouting:
    def test_end_to_end_crosses_every_hop(self, sim):
        lot = ParkingLot(sim, ParkingLotConfig(n_hops=3))
        collector = Collector()
        lot.e2e_sink.attach(1, collector)
        lot.e2e_source.send(
            Packet(flow_id=1, seq=0, size=500, dst="e2e_dst"))
        sim.run()
        assert len(collector.packets) == 1
        for hop in lot.hops:
            assert hop.packets_forwarded == 1

    def test_reverse_path_works(self, sim):
        lot = ParkingLot(sim, ParkingLotConfig(n_hops=3))
        collector = Collector()
        lot.e2e_source.attach(2, collector)
        lot.e2e_sink.send(
            Packet(flow_id=2, seq=0, size=40, dst="e2e_src"))
        sim.run()
        assert len(collector.packets) == 1

    def test_cross_traffic_uses_only_its_hop(self, sim):
        lot = ParkingLot(sim, ParkingLotConfig(n_hops=3))
        collector = Collector()
        lot.cross_sinks[1].attach(3, collector)
        lot.cross_sources[1].send(
            Packet(flow_id=3, seq=0, size=500, dst="xdst1"))
        sim.run()
        assert len(collector.packets) == 1
        assert lot.hops[1].packets_forwarded == 1
        assert lot.hops[0].packets_forwarded == 0
        assert lot.hops[2].packets_forwarded == 0


class TestEndToEndStreaming:
    def test_qa_stream_across_three_congested_hops(self, sim):
        """The paper's backbone-congestion motivation: the adaptive
        stream crosses three bottlenecks, each congested by its own
        cross traffic, and still plays without stalling. An end-to-end
        flow competing with per-hop TCP gets a small share (the classic
        multi-bottleneck penalty), so the layer rate is sized so that
        even that share sustains the base layer -- adaptation cannot go
        below one layer."""
        lot = ParkingLot(sim, ParkingLotConfig(
            n_hops=3, hop_bandwidth=80_000,
            queue_capacity_packets=40))
        config = QAConfig(layer_rate=2_500.0, max_layers=4, k_max=2,
                          packet_size=500)
        session = StreamingSession(sim, lot.e2e_source, lot.e2e_sink,
                                   config)
        for i in range(3):
            tcp = TcpSource(sim, lot.cross_sources[i],
                            lot.cross_sinks[i].name, start=0.1 * i)
            TcpSink(sim, lot.cross_sinks[i], lot.cross_sources[i].name,
                    tcp.flow_id)
        sim.run(until=40.0)
        result = session.result()
        assert result.playout.stall_time < 0.5
        assert result.playout.played_bytes > 0
        assert result.tracer.get("layers").max() >= 2

    def test_rap_shares_each_hop_with_cross_tcp(self, sim):
        lot = ParkingLot(sim, ParkingLotConfig(
            n_hops=2, hop_bandwidth=60_000,
            queue_capacity_packets=30))
        rap = RapSource(sim, lot.e2e_source, "e2e_dst",
                        packet_size=500)
        rap_sink = RapSink(sim, lot.e2e_sink, "e2e_src", rap.flow_id)
        tcp_sinks = []
        for i in range(2):
            tcp = TcpSource(sim, lot.cross_sources[i],
                            lot.cross_sinks[i].name)
            sink = TcpSink(sim, lot.cross_sinks[i],
                           lot.cross_sources[i].name, tcp.flow_id)
            tcp_sinks.append(sink)
        sim.run(until=30.0)
        rap_rate = rap_sink.stats.bytes_received / 30.0
        assert rap_rate > 5_000  # the e2e flow is not starved
        for sink in tcp_sinks:
            assert sink.stats.bytes_received / 30.0 > 5_000
