"""Unit tests for seeded RNG utilities."""

from repro.sim.rng import SeededRNG, make_rng


class TestSeededRNG:
    def test_same_seed_same_stream(self):
        a, b = SeededRNG(7), SeededRNG(7)
        assert [a.random() for _ in range(5)] == [
            b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a, b = SeededRNG(1), SeededRNG(2)
        assert [a.random() for _ in range(5)] != [
            b.random() for _ in range(5)]

    def test_spawn_is_deterministic(self):
        a = SeededRNG(7).spawn("flow")
        b = SeededRNG(7).spawn("flow")
        assert a.random() == b.random()

    def test_spawn_children_are_independent(self):
        parent = SeededRNG(7)
        a = parent.spawn("flow")
        b = parent.spawn("flow")
        # Same label but different spawn index -> different stream.
        assert a.random() != b.random()

    def test_jittered_within_bounds(self):
        rng = SeededRNG(3)
        for _ in range(100):
            v = rng.jittered(10.0, 0.2)
            assert 8.0 <= v <= 12.0

    def test_jittered_zero_fraction_identity(self):
        assert SeededRNG(3).jittered(10.0, 0.0) == 10.0

    def test_make_rng_default_seed(self):
        assert make_rng(None).seed_value == 1
        assert make_rng(9).seed_value == 9
