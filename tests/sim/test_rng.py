"""Unit tests for seeded RNG utilities."""

import os
import subprocess
import sys

from repro.sim.rng import SeededRNG, derive_seed, make_rng


class TestSeededRNG:
    def test_same_seed_same_stream(self):
        a, b = SeededRNG(7), SeededRNG(7)
        assert [a.random() for _ in range(5)] == [
            b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a, b = SeededRNG(1), SeededRNG(2)
        assert [a.random() for _ in range(5)] != [
            b.random() for _ in range(5)]

    def test_spawn_is_deterministic(self):
        a = SeededRNG(7).spawn("flow")
        b = SeededRNG(7).spawn("flow")
        assert a.random() == b.random()

    def test_spawn_children_are_independent(self):
        parent = SeededRNG(7)
        a = parent.spawn("flow")
        b = parent.spawn("flow")
        # Same label but different spawn index -> different stream.
        assert a.random() != b.random()

    def test_jittered_within_bounds(self):
        rng = SeededRNG(3)
        for _ in range(100):
            v = rng.jittered(10.0, 0.2)
            assert 8.0 <= v <= 12.0

    def test_jittered_zero_fraction_identity(self):
        assert SeededRNG(3).jittered(10.0, 0.0) == 10.0

    def test_make_rng_default_seed(self):
        assert make_rng(None).seed_value == 1
        assert make_rng(9).seed_value == 9


class TestDeriveSeed:
    def test_deterministic_and_label_sensitive(self):
        assert derive_seed(7, 1, "flow") == derive_seed(7, 1, "flow")
        assert derive_seed(7, 1, "flow") != derive_seed(7, 2, "flow")
        assert derive_seed(7, 1, "flow") != derive_seed(7, 1, "queue")
        assert derive_seed(7, 1, "flow") != derive_seed(8, 1, "flow")

    def test_31_bit_range(self):
        for seed in range(50):
            assert 0 <= derive_seed(seed, "x") <= 0x7FFFFFFF

    def test_stable_across_hash_randomization(self):
        """The property parallel runs rely on: child seeds must not vary
        with PYTHONHASHSEED (the builtin ``hash`` of a str does)."""
        snippet = (
            "from repro.sim.rng import derive_seed, SeededRNG; "
            "print(derive_seed(7, 1, 'flow'), "
            "SeededRNG(7).spawn('flow').random())"
        )
        outputs = set()
        for hash_seed in ("0", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            result = subprocess.run(
                [sys.executable, "-c", snippet], env=env,
                capture_output=True, text=True, check=True)
            outputs.add(result.stdout.strip())
        assert len(outputs) == 1, outputs
        assert outputs.pop() == (
            f"{derive_seed(7, 1, 'flow')} "
            f"{SeededRNG(7).spawn('flow').random()}")
