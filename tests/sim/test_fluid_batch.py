"""Unit tests for the vectorized flow-class batch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import QAConfig
from repro.sim.fluid_batch import FlowClassBatch, scripted_backoffs

CONFIG = QAConfig(layer_rate=2500.0, max_layers=8, k_max=2)


def test_rejects_bad_shapes_and_spacing():
    ok = np.full((4, 2), np.inf)
    with pytest.raises(ValueError):
        FlowClassBatch(CONFIG, 0, 1000.0, 20_000.0, ok[:0], 10.0)
    with pytest.raises(ValueError):
        FlowClassBatch(CONFIG, 4, 1000.0, 20_000.0,
                       np.zeros(4), 10.0)  # 1-D script array
    tight = np.array([[5.0, 5.05]] + [[np.inf, np.inf]] * 3)
    with pytest.raises(ValueError):
        FlowClassBatch(CONFIG, 4, 1000.0, 20_000.0, tight, 10.0,
                       step=0.1)


def test_jittered_population_runs_and_conserves():
    batch = FlowClassBatch.jittered(CONFIG, 200, slope=1000.0,
                                    duration=30.0, seed=3)
    result = batch.run()
    assert result.n_flows == 200
    residual = result.conservation_error()
    assert float(np.abs(residual).max()) <= 1e-6 * float(
        result.sent_bytes.max())
    assert np.all(result.layers >= 1)
    assert np.all(result.layers <= CONFIG.max_layers)
    assert np.all(result.buffer >= 0.0)
    summary = result.summary()
    assert 0.0 < summary["fairness"] <= 1.0
    assert summary["mean_rate"] > 0


def test_backoff_scripts_are_index_keyed():
    # Same seed, same index -> same script, independent of how many
    # other flows exist (the seed-split property at its root).
    a = scripted_backoffs(9, 17, 30.0, 6.0, min_gap=0.2)
    b = scripted_backoffs(9, 17, 30.0, 6.0, min_gap=0.2)
    assert a == b
    assert a != scripted_backoffs(9, 18, 30.0, 6.0, min_gap=0.2)
    assert all(t2 - t1 >= 0.2 for t1, t2 in zip(a, a[1:]))


def test_backoffs_halve_the_rate_trajectory():
    quiet = FlowClassBatch(
        CONFIG, 1, 1000.0, 10_000.0,
        np.full((1, 1), np.inf), 10.0, max_rate=50_000.0).run()
    noisy = FlowClassBatch(
        CONFIG, 1, 1000.0, 10_000.0,
        np.array([[2.0]]), 10.0, max_rate=50_000.0).run()
    assert noisy.sent_bytes[0] < quiet.sent_bytes[0]


def test_stall_accounting_for_starved_flows():
    # 300 B/s against a 2500 B/s base layer: the window clamp must
    # record the unmet consumption as stalled bytes.
    result = FlowClassBatch(
        CONFIG, 3, 1.0, 300.0, np.full((3, 1), np.inf), 20.0,
        max_rate=400.0).run()
    assert np.all(result.stall_bytes > 0.0)
    assert np.all(result.layers == 1)
