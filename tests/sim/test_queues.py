"""Unit tests for drop-tail and RED queues."""

import pytest

from repro.sim.packet import Packet
from repro.sim.queues import DropTailQueue, REDQueue
from repro.sim.rng import SeededRNG


def make_packet(seq=0, size=1000):
    return Packet(flow_id=1, seq=seq, size=size)


class TestDropTail:
    def test_requires_a_capacity(self):
        with pytest.raises(ValueError):
            DropTailQueue()

    def test_fifo_order(self):
        q = DropTailQueue(capacity_packets=10)
        for i in range(3):
            assert q.enqueue(make_packet(i))
        assert [q.dequeue().seq for _ in range(3)] == [0, 1, 2]

    def test_dequeue_empty_returns_none(self):
        q = DropTailQueue(capacity_packets=2)
        assert q.dequeue() is None

    def test_packet_capacity_enforced(self):
        q = DropTailQueue(capacity_packets=2)
        assert q.enqueue(make_packet(0))
        assert q.enqueue(make_packet(1))
        assert not q.enqueue(make_packet(2))
        assert q.drops == 1
        assert len(q) == 2

    def test_byte_capacity_enforced(self):
        q = DropTailQueue(capacity_bytes=2500)
        assert q.enqueue(make_packet(0))
        assert q.enqueue(make_packet(1))
        assert not q.enqueue(make_packet(2))  # 3000 > 2500
        assert q.byte_length == 2000

    def test_byte_length_tracks_dequeues(self):
        q = DropTailQueue(capacity_packets=5)
        q.enqueue(make_packet(0, size=700))
        q.enqueue(make_packet(1, size=300))
        q.dequeue()
        assert q.byte_length == 300

    def test_drop_callback_invoked(self):
        dropped = []
        q = DropTailQueue(capacity_packets=1, on_drop=dropped.append)
        q.enqueue(make_packet(0))
        q.enqueue(make_packet(1))
        assert [p.seq for p in dropped] == [1]

    def test_counters(self):
        q = DropTailQueue(capacity_packets=1)
        q.enqueue(make_packet(0))
        q.enqueue(make_packet(1))
        q.dequeue()
        assert (q.enqueues, q.dequeues, q.drops) == (1, 1, 1)

    def test_space_freed_after_dequeue(self):
        q = DropTailQueue(capacity_packets=1)
        q.enqueue(make_packet(0))
        q.dequeue()
        assert q.enqueue(make_packet(1))

    def test_clear(self):
        q = DropTailQueue(capacity_packets=5)
        q.enqueue(make_packet(0))
        q.clear()
        assert len(q) == 0
        assert q.byte_length == 0


class TestRed:
    def make(self, **kwargs):
        defaults = dict(capacity_packets=50, min_thresh=5, max_thresh=15,
                        rng=SeededRNG(42))
        defaults.update(kwargs)
        return REDQueue(**defaults)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            self.make(min_thresh=10, max_thresh=5)

    def test_max_prob_validation(self):
        with pytest.raises(ValueError):
            self.make(max_prob=0.0)

    def test_no_early_drops_below_min_threshold(self):
        q = self.make()
        for i in range(5):
            assert q.enqueue(make_packet(i))
        assert q.drops == 0

    def test_drops_appear_under_sustained_load(self):
        q = self.make(weight=0.5)
        for i in range(400):
            q.enqueue(make_packet(i))
            if i % 3 == 0:
                q.dequeue()
        assert q.drops > 0

    def test_average_tracks_occupancy(self):
        q = self.make(weight=0.5)
        for i in range(20):
            q.enqueue(make_packet(i))
        assert q.average_queue > 0

    def test_full_queue_still_drops(self):
        q = self.make(capacity_packets=3, min_thresh=1, max_thresh=2,
                      weight=1.0)
        accepted = sum(q.enqueue(make_packet(i)) for i in range(50))
        assert accepted <= 3 + q.drops  # sanity: nothing disappears
        assert q.drops >= 47
