"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError


class TestScheduling:
    def test_initial_time_is_zero(self, sim):
        assert sim.now == 0.0

    def test_schedule_runs_callback(self, sim):
        hits = []
        sim.schedule(1.0, lambda: hits.append(sim.now))
        sim.run()
        assert hits == [1.0]

    def test_schedule_at_absolute_time(self, sim):
        hits = []
        sim.schedule_at(2.5, lambda: hits.append(sim.now))
        sim.run()
        assert hits == [2.5]

    def test_zero_delay_allowed(self, sim):
        hits = []
        sim.schedule(0.0, lambda: hits.append(True))
        sim.run()
        assert hits == [True]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_in_past_rejected(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_events_ordered_by_time(self, sim):
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self, sim):
        order = []
        sim.schedule(1.0, lambda: order.append("first"))
        sim.schedule(1.0, lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second"]

    def test_priority_beats_insertion_order(self, sim):
        order = []
        sim.schedule(1.0, lambda: order.append("low"), priority=1)
        sim.schedule(1.0, lambda: order.append("high"), priority=0)
        sim.run()
        assert order == ["high", "low"]

    def test_callback_can_schedule_more_events(self, sim):
        hits = []

        def chain():
            hits.append(sim.now)
            if len(hits) < 3:
                sim.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run()
        assert hits == [1.0, 2.0, 3.0]


class TestRun:
    def test_run_until_stops_clock_at_bound(self, sim):
        sim.schedule(10.0, lambda: None)
        sim.run(until=5.0)
        assert sim.now == 5.0

    def test_run_until_is_inclusive(self, sim):
        hits = []
        sim.schedule(5.0, lambda: hits.append(True))
        sim.run(until=5.0)
        assert hits == [True]

    def test_events_beyond_until_stay_pending(self, sim):
        hits = []
        sim.schedule(10.0, lambda: hits.append(True))
        sim.run(until=5.0)
        assert hits == []
        sim.run(until=15.0)
        assert hits == [True]

    def test_run_without_until_drains_heap(self, sim):
        hits = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda: hits.append(True))
        sim.run()
        assert len(hits) == 3
        assert sim.now == 3.0

    def test_clock_advances_to_until_even_if_idle(self, sim):
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_max_events_guard(self, sim):
        def forever():
            sim.schedule(0.1, forever)

        sim.schedule(0.1, forever)
        with pytest.raises(SimulationError):
            sim.run(until=1e9, max_events=100)

    def test_stop_halts_run(self, sim):
        hits = []
        sim.schedule(1.0, lambda: (hits.append(1), sim.stop()))
        sim.schedule(2.0, lambda: hits.append(2))
        sim.run()
        assert hits == [1, sim.stop()] or hits[0] == 1
        assert len([h for h in hits if h == 2]) == 0

    def test_events_processed_counter(self, sim):
        for t in (1.0, 2.0):
            sim.schedule(t, lambda: None)
        sim.run()
        assert sim.events_processed == 2


class TestCancellation:
    def test_cancelled_event_does_not_run(self, sim):
        hits = []
        event = sim.schedule(1.0, lambda: hits.append(True))
        event.cancel()
        sim.run()
        assert hits == []

    def test_cancel_is_idempotent(self, sim):
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()

    def test_peek_skips_cancelled(self, sim):
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        assert sim.peek_time() == 2.0

    def test_peek_empty_returns_none(self, sim):
        assert sim.peek_time() is None


class TestStep:
    def test_step_runs_one_event(self, sim):
        hits = []
        sim.schedule(1.0, lambda: hits.append(1))
        sim.schedule(2.0, lambda: hits.append(2))
        assert sim.step() is True
        assert hits == [1]

    def test_step_on_empty_heap(self, sim):
        assert sim.step() is False
