"""Unit tests for trace export helpers."""

import pytest

from repro.analysis.export import (
    export_csv,
    export_events_csv,
    export_gnuplot,
    export_series_files,
)
from repro.sim.trace import Tracer


@pytest.fixture
def tracer():
    t = Tracer()
    t.record("rate", 0.0, 100.0)
    t.record("rate", 1.0, 200.0)
    t.record("layers", 0.5, 2.0)
    t.log_event(0.7, "add", layer=1, active=2)
    return t


class TestCsv:
    def test_merged_csv(self, tracer, tmp_path):
        target = export_csv(tracer, tmp_path / "out.csv")
        lines = target.read_text().strip().splitlines()
        assert lines[0] == "time,layers,rate"
        assert len(lines) == 4  # header + 3 distinct times

    def test_selected_names(self, tracer, tmp_path):
        target = export_csv(tracer, tmp_path / "out.csv",
                            names=["rate"])
        assert target.read_text().splitlines()[0] == "time,rate"

    def test_creates_parent_dirs(self, tracer, tmp_path):
        target = export_csv(tracer, tmp_path / "a" / "b" / "out.csv")
        assert target.exists()


class TestSeriesFiles:
    def test_one_file_per_series(self, tracer, tmp_path):
        files = export_series_files(tracer, tmp_path / "series")
        assert sorted(f.name for f in files) == ["layers.csv",
                                                 "rate.csv"]

    def test_raw_samples_preserved(self, tracer, tmp_path):
        files = export_series_files(tracer, tmp_path, names=["rate"])
        lines = files[0].read_text().strip().splitlines()
        assert len(lines) == 3  # header + the two raw samples


class TestEvents:
    def test_event_rows(self, tracer, tmp_path):
        target = export_events_csv(tracer, tmp_path / "events.csv")
        lines = target.read_text().strip().splitlines()
        assert lines[0] == "time,kind,fields"
        assert "add" in lines[1]
        assert "layer=1" in lines[1]


class TestGnuplot:
    def test_format(self, tracer, tmp_path):
        target = export_gnuplot(tracer, tmp_path / "trace.dat")
        lines = target.read_text().strip().splitlines()
        assert lines[0].startswith("# time ")
        assert len(lines) == 4
        assert all(len(line.split()) == 3 for line in lines[1:])
