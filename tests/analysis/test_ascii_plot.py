"""Unit tests for ASCII chart rendering."""

from repro.analysis.ascii_plot import ascii_chart, sparkline
from repro.sim.trace import TimeSeries


def series(values, dt=1.0):
    ts = TimeSeries("x")
    for i, v in enumerate(values):
        ts.record(i * dt, v)
    return ts


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_series_uses_lowest_glyph(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_monotone_series_monotone_glyphs(self):
        line = sparkline([0, 1, 2, 3])
        assert line == "".join(sorted(line))

    def test_resamples_to_width(self):
        assert len(sparkline(list(range(1000)), width=40)) == 40

    def test_short_series_not_padded(self):
        assert len(sparkline([1, 2], width=40)) == 2


class TestAsciiChart:
    def test_empty_series(self):
        out = ascii_chart(series([]), title="t")
        assert "no data" in out

    def test_contains_title_and_marks(self):
        out = ascii_chart(series([0, 5, 10, 5, 0]), title="wave")
        assert out.splitlines()[0] == "wave"
        assert "*" in out

    def test_overlay_marks(self):
        main = series([0, 10, 0, 10])
        over = series([5, 5, 5, 5])
        out = ascii_chart(main, overlay=over)
        assert "o" in out
        assert "*" in out

    def test_dimensions(self):
        out = ascii_chart(series(range(100)), width=40, height=8)
        rows = [line for line in out.splitlines() if "|" in line]
        assert len(rows) == 8
        assert all(len(r.split("|")[1]) == 40 for r in rows)

    def test_axis_labels_present(self):
        out = ascii_chart(series([0, 100]), title="t")
        assert "100" in out
        assert "t=0.0s" in out
        assert "t=1.0s" in out
