"""The repro-report pipeline: rendering and artifact emission."""

from __future__ import annotations

import json

import pytest

from repro.analysis.run_report import main
from repro.experiments.multiflow_fairness import build_scenario


@pytest.fixture(scope="module")
def report_dir(tmp_path_factory):
    """One small instrumented run shared by every test in the module."""
    out = tmp_path_factory.mktemp("report")
    rc = main(["multiflow", "--n-qa", "2", "--n-tcp", "2",
               "--duration", "15", "--out", str(out), "--quiet"])
    assert rc == 0
    return out


class TestArtifacts:
    def test_all_artifacts_written(self, report_dir):
        for name in ("report.txt", "flight.jsonl", "metrics.prom",
                     "trace.json", "manifest.json"):
            assert (report_dir / name).exists(), name

    def test_report_renders_the_decision_log(self, report_dir):
        text = (report_dir / "report.txt").read_text()
        assert "repro-report" in text
        assert "section 2.2 rule" in text
        assert "sqrt(2*S*buf)" in text
        assert "Decision records:" in text
        assert "Metrics (counters and gauges)" in text

    def test_flight_log_drops_carry_rule_inputs(self, report_dir):
        drops = [
            json.loads(line)
            for line in (report_dir / "flight.jsonl").read_text()
                                                     .splitlines()
            if json.loads(line)["kind"] == "drop"
        ]
        assert drops, "15 s at this operating point must drop layers"
        for drop in drops:
            assert {"rate", "consumption", "slope", "drainable",
                    "threshold"} <= set(drop["fields"])

    def test_manifest_attaches_observability(self, report_dir):
        manifest = json.loads((report_dir / "manifest.json").read_text())
        obs = manifest["observability"]
        assert obs["recorder"]["recorded"] > 0
        assert "qa_active_layers" in obs["metrics"]
        assert manifest["experiments"][0]["name"].startswith("report:")

    def test_chrome_trace_is_well_formed(self, report_dir):
        trace = json.loads((report_dir / "trace.json").read_text())
        events = trace["traceEvents"]
        assert any(e["ph"] == "i" for e in events)  # decision instants
        assert any(e["ph"] == "M" for e in events)  # thread metadata
        assert any(e["ph"] == "C" for e in events)  # tracer counters

    def test_prometheus_text_has_engine_metrics(self, report_dir):
        text = (report_dir / "metrics.prom").read_text()
        assert "# TYPE engine_handler_seconds histogram" in text
        assert "engine_events_total" in text
        assert 'qa_active_layers{flow="qa0"}' in text


class TestDisabledRun:
    def test_uninstrumented_scenario_stays_dark(self):
        scenario = build_scenario(1, 1, duration=5.0, seed=1)
        scenario.run()
        assert len(scenario.recorder) == 0
        assert scenario.metrics.snapshot() == {}
        assert scenario.observability() == {}
