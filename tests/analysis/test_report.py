"""Unit tests for table/record formatting."""

from repro.analysis.report import format_kv, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(("a", "bb"), [(1, 2), (30, 40)])
        lines = text.splitlines()
        assert lines[0].split("|")[0].strip() == "a"
        assert "30" in lines[3]

    def test_title_first_line(self):
        text = format_table(("a",), [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_none_rendered_as_dash(self):
        text = format_table(("a",), [(None,)])
        assert "-" in text.splitlines()[-1]

    def test_float_formatting(self):
        text = format_table(("a",), [(1.2345,)])
        assert "1.23" in text

    def test_whole_floats_rendered_as_ints(self):
        text = format_table(("a",), [(5.0,)])
        assert text.splitlines()[-1].strip() == "5"

    def test_empty_rows(self):
        text = format_table(("col",), [])
        assert "col" in text


class TestFormatKv:
    def test_alignment(self):
        text = format_kv({"short": 1, "much_longer_key": 2})
        lines = text.splitlines()
        assert lines[0].index(":") == lines[1].index(":")

    def test_title(self):
        text = format_kv({"a": 1}, title="Summary")
        assert text.splitlines()[0] == "Summary"

    def test_empty_record(self):
        assert format_kv({}) == "\n"
