"""Span-hook mutations: RL007's tracing extension (span_hook factory)."""


class SessionLike:
    def __init__(self, spans, context) -> None:
        self._span = spans.span_hook("session1", context)
        self._tick_span = spans.span_hook("session1.tick", context)

    def unguarded_attr(self, now) -> None:
        self._span(now, now, "pacer.backoff", {"rate": 1000.0})

    def guarded_attr(self, now) -> None:
        if self._span is not None:
            self._span(now, now, "pacer.backoff", {"rate": 1000.0})

    def local_from_attr(self, t0, t1) -> None:
        span = self._tick_span
        span(t0, t1, "qa.tick", {"active": 3})

    def local_from_attr_guarded(self, t0, t1) -> None:
        span = self._tick_span
        if span is not None:
            span(t0, t1, "qa.tick", {"active": 3})


def direct_span(spans, context) -> None:
    spans.span_hook("client", context)(0.0, 1.0, "session", {})


def local_span(spans, context) -> None:
    record = spans.span_hook("client", context)
    record(0.0, 1.0, "handshake", {})


def local_span_guarded(spans, context) -> None:
    record = spans.span_hook("client", context)
    if record is not None:
        record(0.0, 1.0, "handshake", {})
