"""Mutated QA math: dimension errors RL006 must pin to exact lines."""

from repro.core.units import Bytes, BytesPerSec, BytesPerSec2, Seconds


def takeover(rate: BytesPerSec, slope: BytesPerSec2) -> Seconds:
    return rate / slope


def drop_rule_transposed(na: int, rate: BytesPerSec,
                         slope: BytesPerSec2,
                         elapsed: Seconds) -> bool:
    return na * rate - slope >= elapsed


def sum_mismatch(rate: BytesPerSec, elapsed: Seconds) -> float:
    return rate + elapsed


def swapped_args(rate: BytesPerSec, slope: BytesPerSec2) -> Seconds:
    return takeover(slope, rate)


def max_mismatch(backlog: Bytes, rate: BytesPerSec) -> float:
    return max(backlog, rate)
