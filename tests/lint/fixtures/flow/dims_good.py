"""Correct QA math: the paper's drop rule must type-check (RL006)."""

import math

from repro.core.units import Bytes, BytesPerSec, BytesPerSec2, Seconds


def drop_rule(na: int, consumption: BytesPerSec, rate: BytesPerSec,
              slope: BytesPerSec2, total_buf: Bytes) -> bool:
    return na * consumption - rate >= math.sqrt(2 * slope * total_buf)


def fill_time(backlog: Bytes, rate: BytesPerSec) -> Seconds:
    return backlog / rate


def ramp(rate: BytesPerSec, slope: BytesPerSec2, dt: Seconds) -> BytesPerSec:
    return rate + slope * dt
