"""RL012 fixture: dtype and shape discipline in batch array code."""

import numpy as np


def build(n: int):
    idx = np.arange(n)
    grid = np.zeros((n, 4), dtype=np.float64)
    pad = np.full((n,), np.nan, dtype=np.float64)
    counts = np.zeros(n, dtype=np.int64)
    counts += 0.5
    mask = idx < 3
    sel = grid[mask]
    small = np.zeros(n, dtype=np.float32)
    return sel, pad, small


def clean(n: int):
    idx = np.arange(n, dtype=np.int64)
    grid = np.zeros((n, 4), dtype=np.float64)
    rowmask = np.zeros((n, 4), dtype=np.bool_)
    acc = np.zeros(n, dtype=np.float64)
    acc += 0.5
    lanes = np.full((n,), np.inf, dtype=np.float64)
    sel = grid[rowmask]
    return idx, sel, lanes
