"""Scheduler-tiebreak mutations: implicit-priority calls RL008 must catch."""


def periodic(sim, cb) -> None:
    sim.schedule(0.1, cb)


def explicit(sim, cb) -> None:
    sim.schedule(0.1, cb, priority=0)


def positional(sim, cb) -> None:
    sim.schedule(0.1, cb, 1)


def jittered_delay(sim, rng, cb) -> None:
    sim.schedule(rng.jittered(0.2, 0.25), cb)


def drawn_local(sim, rng, cb) -> None:
    delay = rng.uniform(0.0, 1.0)
    sim.schedule(delay, cb)


def absolute(sim, cb) -> None:
    sim.schedule_at(2.0, cb)


def batch(sim, items) -> None:
    sim.schedule_many(items)
