"""Seed-flow mutations: aliasing and raw seeds RL005 must catch."""

import random

from repro.sim.rng import SeededRNG, derive_seed


def consume(rng: SeededRNG) -> None:
    del rng


def double_use(rng: SeededRNG) -> None:
    consume(rng)
    consume(rng)


def alias_use(rng: SeededRNG) -> None:
    other = rng
    consume(other)
    consume(rng)


def raw_seed() -> None:
    rng = random.Random(7)
    consume(rng=rng)


def loop_reuse(rng: SeededRNG) -> None:
    for _ in range(3):
        consume(rng)


def per_flow_ok(root: SeededRNG) -> None:
    for index in range(3):
        rng = root.spawn(f"flow{index}")
        consume(rng)


def dispatch_ok(rng: SeededRNG, kind: str) -> None:
    if kind == "a":
        consume(rng)
        return
    if kind == "b":
        consume(rng)
        return
    consume(rng)


class Shared:
    def __init__(self) -> None:
        self.rng = SeededRNG(derive_seed(1, "shared"))

    def leak(self) -> None:
        consume(self.rng)
