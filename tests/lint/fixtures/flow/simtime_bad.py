"""RL011 fixture: scheduling in the past or in the wrong dimension."""

from repro.core.units import Bytes, Seconds


def chunk_size():
    return Bytes(1500.0)


class Burster:
    def __init__(self, sim):
        self.sim = sim

    def go(self, start: Seconds) -> None:
        self.sim.schedule(chunk_size(), self.tick, priority=0)
        self.sim.schedule(-0.25, self.tick, priority=0)
        self.sim.schedule(start - self.sim.now, self.tick, priority=0)
        self.sim.schedule_at(self.sim.now - 1.0, self.tick, priority=0)
        clamped = max(0.0, start - self.sim.now)
        self.sim.schedule(clamped, self.tick, priority=0)
        self.sim.schedule(0.5, self.tick, priority=0)
        self.sim.schedule_at(self.sim.now + 1.0, self.tick, priority=0)

    def tick(self) -> None:
        pass
