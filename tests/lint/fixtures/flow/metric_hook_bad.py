"""Metric/recorder-hook mutations: RL007's observability extension."""


class LinkLike:
    def __init__(self, registry) -> None:
        self._tx_hook = registry.counter_hook("tx_bytes", link="l0")
        self._depth_hook = registry.histogram_hook("queue_depth")

    def unguarded_attr(self) -> None:
        self._tx_hook(500.0)

    def guarded_attr(self) -> None:
        if self._tx_hook is not None:
            self._tx_hook(500.0)

    def local_from_attr(self) -> None:
        hook = self._depth_hook
        hook(3.0)

    def local_from_attr_guarded(self) -> None:
        hook = self._depth_hook
        if hook is not None:
            hook(3.0)


def direct_gauge(registry) -> None:
    registry.gauge_hook("depth")(2.0)


def local_recorder(recorder) -> None:
    record = recorder.hook("qa0")
    record(0.0, "drop", {"layer": 2})


def local_recorder_guarded(recorder) -> None:
    record = recorder.hook("qa0")
    if record is not None:
        record(0.0, "drop", {"layer": 2})
