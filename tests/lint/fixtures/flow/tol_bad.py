"""RL009 fixture: decentralized tolerances, exact float equality."""

from repro.core.tolerances import close
from repro.core.units import Seconds

_EPS_LOCAL = 1e-6


def same_time(a: Seconds, b: Seconds) -> bool:
    return a == b


def drifted(a: Seconds, b: Seconds) -> bool:
    return a != b


def count_match(n: int, m: int) -> bool:
    return n == m


def close_enough(a: Seconds, b: Seconds) -> bool:
    return close(a, b)


def ordered(a: Seconds, b: Seconds) -> bool:
    return a < b


WINDOW = 5.0
