"""Telemetry-hook mutations: unguarded hot-path calls RL007 must catch."""


class Producer:
    def __init__(self, bus) -> None:
        self.on_event = bus.event_hook()

    def unguarded(self) -> None:
        self.on_event("packet", size=1)

    def guarded(self) -> None:
        if self.on_event is not None:
            self.on_event("packet", size=1)

    def truthy(self) -> None:
        if self.on_event:
            self.on_event("packet", size=1)

    def early_return(self) -> None:
        if self.on_event is None:
            return
        self.on_event("packet", size=1)

    def direct_call(self, bus) -> None:
        bus.event_hook()("packet", size=1)

    def local_hook(self, bus) -> None:
        hook = bus.event_hook()
        hook("packet", size=1)

    def local_guarded(self, bus) -> None:
        hook = bus.event_hook()
        if hook is not None:
            hook("packet", size=1)

    def assert_guarded(self, bus) -> None:
        hook = bus.event_hook()
        assert hook is not None
        hook("packet", size=1)
