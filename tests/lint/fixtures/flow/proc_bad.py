"""RL010 fixture: unpicklable tasks, worker-side global writes."""

import concurrent.futures

_RESULTS = {}


def record(x):
    _RESULTS[x] = x * 2


def worker(x):
    return record(x)


def pure_worker(x):
    return x * 2


def fan_out(items):
    with concurrent.futures.ProcessPoolExecutor(2) as pool:
        bad = pool.submit(lambda: 1)

        def local(x):
            return x

        nested = pool.submit(local)
        futs = [pool.submit(worker, item) for item in items]
        good = [pool.submit(pure_worker, item) for item in items]
    return bad, nested, futs, good
