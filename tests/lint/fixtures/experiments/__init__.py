"""Fixture experiment registry (mirrors repro.experiments.EXPERIMENTS)."""

EXPERIMENTS = {
    "fig-good": "tests.lint.fixtures.experiments.fig_good",
    "fig-badproto": "tests.lint.fixtures.experiments.fig_badproto",
    "fig-dynamic": "tests.lint.fixtures.experiments.fig_dynamic",
}
