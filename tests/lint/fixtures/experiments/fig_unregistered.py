"""RL002 positive case: valid protocol but missing from EXPERIMENTS."""


def run(duration: float = 5.0) -> str:  # deterministic: no seed needed
    return f"ran for {duration}"


def render(result: str) -> str:
    return result
