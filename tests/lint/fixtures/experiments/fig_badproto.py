"""RL002 positive cases: registered, but breaks the runner protocol.

- ``run`` has a parameter without a default (dispatch would crash);
- it imports the stochastic toolkit yet accepts no seed/seeds/kwargs;
- there is no render function or render-bearing class.
"""

from repro.experiments.common import build_experiment


def run(duration):  # line 11: RL002 x2 (no default, no seed threading)
    return build_experiment(duration=duration)
