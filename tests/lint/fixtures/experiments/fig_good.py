"""RL002/RL004 negative case: a fully protocol-compliant experiment."""

from repro.sim.rng import make_rng


def run(seed: int = 1, duration: float = 5.0) -> dict:
    rng = make_rng(seed)
    return {"seed": seed, "duration": duration, "draw": rng.random()}


def render(result: dict) -> str:
    return f"fig-good: {result}"
