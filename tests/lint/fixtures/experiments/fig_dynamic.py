"""RL004 positive cases: dynamic imports invisible to the cache key."""

import importlib  # line 3: RL004


def run(name: str = "fig01", duration: float = 5.0) -> object:
    module = importlib.import_module(f"repro.experiments.{name}")
    mystery = __import__("repro.core.formulas")  # line 8: RL004
    return (module, mystery, duration)


def render(result: object) -> str:
    return str(result)
