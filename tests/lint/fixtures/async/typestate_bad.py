# RL016 targets: transport reads and driver calls after teardown, and
# a replayed-but-never-recorded tape; the before-teardown and rebind
# shapes must stay silent.


class FakePacer:
    def __init__(self):
        self._rate = 1.0
        self._srtt = 0.1

    @property
    def rate(self):
        return self._rate

    @property
    def slope(self):
        return self._srtt

    def finish(self):
        self._rate = 0.0


class FakeCore:
    def __init__(self, pacer):
        self.pacer = pacer

    def tick(self):
        pass

    def finish(self):
        pass

    @classmethod
    def replay(cls, tape):
        return cls(FakePacer())


class SessionTape:
    def __init__(self):
        self.calls = []


def summarize(pacer: FakePacer):
    return {"rate": pacer.rate, "slope": pacer.slope}


def bad_teardown(core: FakeCore, pacer: FakePacer):
    core.finish()
    pacer.finish()
    core.tick()  # driver call on a torn-down session
    rate = pacer.rate  # transport read on a frozen controller
    return summarize(pacer), rate  # dead name into a transport reader


def good_teardown(core: FakeCore, pacer: FakePacer):
    summary = summarize(pacer)  # reads happen while the session is live
    pacer.finish()
    core.finish()
    return summary


def rebind_resurrects(pacer: FakePacer):
    pacer.finish()
    pacer = FakePacer()
    return pacer.rate  # fresh object: silent


def vacuous_replay():
    tape = SessionTape()  # never recorded into
    return FakeCore.replay(tape)
