# RL015 targets: spawned-task ownership failures and un-awaited
# coroutine calls, plus the retained/cancelled shapes that stay silent.
import asyncio


async def worker():
    await asyncio.sleep(0)


async def fire_and_forget():
    asyncio.create_task(worker())  # dropped: weak ref only


async def discards():
    handle = asyncio.create_task(worker())  # bound but never read
    await asyncio.sleep(0)


async def never_scheduled():
    worker()  # coroutine object created and immediately dropped


class LeakyOwner:
    def __init__(self):
        self._task = None

    def start(self):
        self._task = asyncio.create_task(worker())  # no cancel anywhere


class CleanOwner:
    def __init__(self):
        self._task = None

    def start(self):
        self._task = asyncio.create_task(worker())  # cancelled in stop()

    def stop(self):
        if self._task is not None:
            self._task.cancel()


async def awaited():
    handle = asyncio.create_task(worker())  # awaited below: retained
    await handle
