# RL013 targets: blocking work on the event loop, plus the sanctioned
# escape hatches that must stay silent.
import asyncio
import json
import subprocess
import time


async def sleepy():
    time.sleep(0.1)  # direct blocking site in a coroutine
    await asyncio.sleep(0)


def _helper():
    subprocess.run(["true"])  # blocking, but _helper is sync: silent here


async def delegating():
    _helper()  # call into a may-block sync helper: flagged at call site
    await asyncio.sleep(0)


async def spinner():
    while True:  # unbounded CPU loop with no await: starves the loop
        pass


async def sanctioned():
    loop = asyncio.get_running_loop()
    await loop.run_in_executor(None, time.sleep, 0.1)  # exempt
    await asyncio.to_thread(_helper)  # exempt


class PacketProto(asyncio.DatagramProtocol):
    def datagram_received(self, data, addr):
        _decode(data)


def _decode(data):
    return json.loads(data.decode())  # JSON on the per-packet path


def offline_decode(data):
    # Same codec, but nothing reaches it from a packet callback: silent.
    return json.loads(data.decode())
