# RL014 targets: shared attributes written across an await, plus the
# atomic / guarded / unshared shapes that must stay silent.
import asyncio


class Counter:
    def __init__(self):
        self.total = 0
        self.safe = 0
        self.private = 0
        self._lock = asyncio.Lock()

    async def bump_unsafe(self):
        before = self.total
        await asyncio.sleep(0)
        self.total = before + 1  # read .. await .. write: lost update

    async def bump_atomic(self):
        await asyncio.sleep(0)
        self.total += 1  # single-statement update: atomic, silent

    async def bump_guarded(self):
        async with self._lock:
            before = self.safe
            await asyncio.sleep(0)
            self.safe = before + 1  # same span, but lock-guarded: silent

    async def bump_private(self):
        before = self.private
        await asyncio.sleep(0)
        self.private = before + 1  # spans, but single-context: silent


class Runner:
    def __init__(self):
        self._task = None
        self._guard_task = None

    def start(self, counter: Counter):
        self._task = asyncio.create_task(counter.bump_unsafe())
        self._guard_task = asyncio.create_task(counter.bump_guarded())

    def stop(self):
        if self._task is not None:
            self._task.cancel()
        if self._guard_task is not None:
            self._guard_task.cancel()


async def main():
    counter = Counter()
    runner = Runner()
    runner.start(counter)
    await counter.bump_atomic()
    print(counter.total)
    runner.stop()


def entry():
    asyncio.run(main())
