"""RL003 positive cases: unit-helper values mixed with raw literals.

Stem 'formulas' under a core/ directory puts this file in RL003's
always-checked set, exactly like src/repro/core/formulas.py.
"""

from repro.core import units
from repro.core.units import KILOBYTE, kbps_to_bytes, ms


def mixed_add(bandwidth_kbps: float) -> float:
    return kbps_to_bytes(bandwidth_kbps) + 1000  # line 12: RL003 (add)


def mixed_compare(bandwidth_kbps: float) -> bool:
    return kbps_to_bytes(bandwidth_kbps) > 125.0  # line 16: RL003 (cmp)


def module_attr_mix(delay: float) -> float:
    return units.ms(delay) - 0.5  # line 20: RL003 (module-attr helper)


def scaling_is_fine(bandwidth_kbps: float) -> float:
    return kbps_to_bytes(bandwidth_kbps) * 8  # fine: Mult is scaling

def zero_is_fine(bandwidth_kbps: float) -> bool:
    return kbps_to_bytes(bandwidth_kbps) > 0  # fine: zero has no units


def annotated_mix(buffered: float) -> float:
    return buffered + KILOBYTE - 24  # repro-lint: disable=RL003
