"""RL003 negative case: units discipline done right.

Not one of the always-checked core stems, but it imports
repro.core.units, which also puts it in scope -- and stays clean.
"""

from repro.core.units import KILOBYTE, kbps_to_bytes


def headroom(bandwidth_kbps: float, reserved_kbps: float) -> float:
    # Same-unit arithmetic: both operands come from the helpers.
    return kbps_to_bytes(bandwidth_kbps) - kbps_to_bytes(reserved_kbps)


def in_kilobytes(nbytes: float) -> float:
    return nbytes / KILOBYTE  # Div is unit conversion, allowed
