"""RL001 negative case: the sanctioned way to be stochastic."""

from repro.sim.rng import SeededRNG, derive_seed


def build_queue_rng(experiment_seed: int, queue_name: str) -> SeededRNG:
    return SeededRNG(derive_seed(experiment_seed, "queue", queue_name))


def jitter(rng: SeededRNG, value: float) -> float:
    # Method calls on a local rng object are fine: the head of the
    # attribute chain is not an imported module.
    return rng.jittered(value, 0.1)


def stable_order(flow_ids: set) -> list:
    return sorted(flow_ids)  # sets are fine as long as order is forced
