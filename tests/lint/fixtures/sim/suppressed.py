"""Suppression cases: the same RL001 hazards, annotated away.

The whole-file directive silences RL003 only (there are no RL003
violations here, proving unknown-to-this-file codes are harmless), and
each RL001 hazard carries a line suppression.
"""

# repro-lint: disable-file=RL003

import random  # repro-lint: disable=RL001


def legacy_rng():
    return random.Random(0)  # repro-lint: disable=RL001


def unsuppressed():
    return random.random()  # line 18: the one RL001 that must survive
