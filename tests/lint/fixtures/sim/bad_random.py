"""RL001 positive cases: every banned determinism hazard in one file.

Line numbers are asserted by tests/lint/test_rules.py -- renumber there
if this file changes.
"""


def red_queue_fallback(rng=None):
    # The exact bug repro-lint exists to prevent: the old REDQueue
    # fallback silently gave every queue the same constant-seed stream.
    if rng is None:
        import random  # line 12: RL001 (import random)

        rng = random.Random(0)  # line 14: RL001 (random.Random)
    return rng


def module_state():
    import numpy.random  # line 19: RL001 (numpy.random import)

    return numpy.random.rand()  # line 21: RL001 (numpy.random.rand)


def wall_clock():
    from time import perf_counter  # line 25: RL001 (time.perf_counter)

    return perf_counter()


def hash_order(flows):
    ids = {flow.flow_id for flow in flows}
    for flow_id in ids:  # fine: iterating a *name* is out of scope
        pass
    for flow_id in {f.flow_id for f in flows}:  # line 34: RL001 (set iter)
        pass
    return list({1, 2, 3})  # line 36: RL001 (list over set)


def sorted_is_fine(flows):
    return sorted({f.flow_id for f in flows})  # fine: sorted() wraps it
