"""RL001 positive cases: asyncio timers leaking into simulation code.

Line numbers are asserted by tests/lint/test_rules.py -- renumber there
if this file changes.
"""


def schedule_with_asyncio():
    import asyncio  # line 9: RL001 (import asyncio)

    return asyncio.get_event_loop()  # line 11: RL001 (asyncio.*)


def sleepy_retry():
    from asyncio import sleep  # line 15: RL001 (from asyncio import)

    return sleep(0.1)


def loop_clock(loop):
    return loop.time()  # line 21: RL001 (loop.time() wall clock)


def private_loop_clock(_loop):
    return _loop.time()  # line 25: RL001 (loop.time() wall clock)


def innocent_time_method(tracer):
    return tracer.time()  # fine: not an event-loop receiver name
