"""RL001 negative cases: the service zone keeps its wall clock.

Everything here would be flagged under ``sim/``; under ``service/`` the
wall-clock and asyncio carve-out applies (randomness is still banned --
see bad_service_random.py).
"""

import asyncio  # fine here: the service zone is asyncio's home
import time  # fine here: wall-clock reads are the service's job


async def paced_send(pacer):
    loop = asyncio.get_running_loop()
    started = loop.time()  # fine here: service sessions run on it
    await asyncio.sleep(pacer.ipg)
    return time.monotonic() - started


def seeded_impairment(rng):
    # Randomness still flows from repro.sim.rng streams, never ambient.
    return rng.uniform(0.0, 0.02)
