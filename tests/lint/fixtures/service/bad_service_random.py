"""RL001 positive cases: the service carve-out does not cover entropy.

Wall-clock and asyncio are legitimate in the service zone, but a load
fleet's loss pattern must replay from its seed -- ambient randomness
and OS entropy stay banned. Line numbers are asserted by
tests/lint/test_rules.py -- renumber there if this file changes.
"""


def unseeded_loss():
    import random  # line 11: RL001 (import random)

    return random.random() < 0.01  # line 13: RL001 (random.*)


def entropy_label():
    import uuid

    return uuid.uuid4()  # line 19: RL001 (uuid.uuid4)


def hash_ordered_sessions(sessions):
    return list({s.session_id for s in sessions})  # line 23: RL001
