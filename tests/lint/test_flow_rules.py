"""Flow rules RL005-RL008: exact findings on mutation fixtures.

Each fixture under ``fixtures/flow/`` mutates one invariant the paper's
reproduction depends on; the tests pin every finding to its exact
``(file, line, col)`` so a rule that drifts (fires on the wrong node, or
stops firing) fails loudly. The deliberately-correct functions in the
same fixtures double as false-positive regression checks.
"""

import pathlib

from repro.lint import lint_paths
from repro.lint.rules import (
    DimensionRule,
    SchedulerTiebreakRule,
    SeedFlowRule,
    TelemetryCostRule,
)

FLOW_FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "flow"


def locations(rule):
    violations, _ = lint_paths([str(FLOW_FIXTURES)], rules=[rule])
    assert all(v.code == rule.code for v in violations)
    return [
        (pathlib.Path(v.path).name, v.line, v.col) for v in violations
    ], violations


class TestDimensionRule:
    def test_exact_findings(self):
        found, violations = locations(DimensionRule())
        assert found == [
            ("dims_bad.py", 13, 11),  # na*R - S: rate minus slope
            ("dims_bad.py", 17, 11),  # rate + elapsed
            ("dims_bad.py", 21, 11),  # takeover(slope, rate): both args
            ("dims_bad.py", 21, 11),
            ("dims_bad.py", 25, 11),  # max(backlog, rate)
        ]
        messages = [v.message for v in violations]
        assert "B/s - B/s^2" in messages[0]
        assert "B/s + s" in messages[1]
        assert "argument 'rate' expects B/s, got B/s^2" in messages[2]
        assert "argument 'slope' expects B/s^2, got B/s" in messages[3]
        assert "B max B/s" in messages[4]

    def test_correct_math_is_silent(self):
        found, _ = locations(DimensionRule())
        assert not any(name == "dims_good.py" for name, _, _ in found)


class TestSeedFlowRule:
    def test_exact_findings(self):
        found, violations = locations(SeedFlowRule())
        assert found == [
            ("seed_bad.py", 14, 4),  # second consume(rng)
            ("seed_bad.py", 20, 4),  # consumed via alias then directly
            ("seed_bad.py", 25, 4),  # random.Random(7) origin
            ("seed_bad.py", 30, 8),  # outer rng consumed per iteration
            ("seed_bad.py", 54, 8),  # self.rng passed through directly
        ]
        messages = [v.message for v in violations]
        assert "more than one stochastic consumer" in messages[0]
        assert "more than one stochastic consumer" in messages[1]
        assert "does not originate from spawn()" in messages[2]
        assert "more than one stochastic consumer" in messages[3]
        assert "shared RNG attribute 'rng'" in messages[4]

    def test_sanctioned_patterns_are_silent(self):
        # per_flow_ok (spawn inside the loop) and dispatch_ok (each
        # branch returns) must not fire: lines 36, 41, 44, 46.
        found, _ = locations(SeedFlowRule())
        flagged_lines = {line for _, line, _ in found}
        assert flagged_lines.isdisjoint({36, 41, 44, 46})


class TestTelemetryCostRule:
    def test_exact_findings(self):
        found, violations = locations(TelemetryCostRule())
        assert found == [
            ("hook_bad.py", 9, 8),  # unguarded self.on_event(...)
            ("hook_bad.py", 25, 8),  # event_hook()(...) called directly
            ("hook_bad.py", 29, 8),  # unguarded local hook
            ("metric_hook_bad.py", 10, 8),  # unguarded counter-hook attr
            ("metric_hook_bad.py", 18, 8),  # unguarded local from attr
            ("metric_hook_bad.py", 27, 4),  # gauge_hook()(...) directly
            ("metric_hook_bad.py", 32, 4),  # unguarded recorder hook
            ("span_hook_bad.py", 10, 8),  # unguarded span-hook attr
            ("span_hook_bad.py", 18, 8),  # unguarded local from attr
            ("span_hook_bad.py", 27, 4),  # span_hook()(...) directly
            ("span_hook_bad.py", 32, 4),  # unguarded local span hook
        ]
        assert "self.on_event" in violations[0].message
        assert "event_hook() result called" in violations[1].message
        assert "hook 'hook'" in violations[2].message
        assert "self._tx_hook" in violations[3].message
        assert "hook 'hook'" in violations[4].message
        assert "gauge_hook() result called" in violations[5].message
        assert "hook 'record'" in violations[6].message
        assert "self._span" in violations[7].message
        assert "hook 'span'" in violations[8].message
        assert "span_hook() result called" in violations[9].message
        assert "hook 'record'" in violations[10].message

    def test_guarded_span_hooks_are_silent(self):
        # span_hook_bad.py: guarded attr (14), guarded local from attr
        # (23), guarded local from factory (38) must not fire.
        found, _ = locations(TelemetryCostRule())
        flagged = {line for name, line, _ in found
                   if name == "span_hook_bad.py"}
        assert flagged.isdisjoint({14, 23, 38})

    def test_guarded_calls_are_silent(self):
        # hook_bad.py: is-not-None, truthy, early-return and assert
        # guards at lines 13, 17, 22, 34, 39.
        found, _ = locations(TelemetryCostRule())
        flagged = {line for name, line, _ in found if name == "hook_bad.py"}
        assert flagged.isdisjoint({13, 17, 22, 34, 39})

    def test_guarded_metric_hooks_are_silent(self):
        # metric_hook_bad.py: guarded attr (14), guarded local from attr
        # (23), guarded recorder hook (38) must not fire.
        found, _ = locations(TelemetryCostRule())
        flagged = {line for name, line, _ in found
                   if name == "metric_hook_bad.py"}
        assert flagged.isdisjoint({14, 23, 38})


class TestSchedulerTiebreakRule:
    def test_exact_findings(self):
        found, violations = locations(SchedulerTiebreakRule())
        assert found == [
            ("sched_bad.py", 5, 4),  # schedule without priority
            ("sched_bad.py", 26, 4),  # schedule_at without priority
            ("sched_bad.py", 30, 4),  # schedule_many without priority
        ]
        assert "schedule()" in violations[0].message
        assert "schedule_at()" in violations[1].message
        assert "schedule_many()" in violations[2].message

    def test_explicit_and_jittered_are_silent(self):
        # priority kwarg (9), positional priority (13), jittered delay
        # (17), local bound from a draw (22).
        found, _ = locations(SchedulerTiebreakRule())
        flagged_lines = {line for _, line, _ in found}
        assert flagged_lines.isdisjoint({9, 13, 17, 22})


class TestSuppressionsCoverFlowRules:
    def test_inline_disable_silences_flow_finding(self, tmp_path):
        path = tmp_path / "late.py"
        path.write_text(
            "def go(sim, cb):\n"
            "    sim.schedule(0.1, cb)  # repro-lint: disable=RL008\n"
        )
        violations, _ = lint_paths(
            [str(path)], rules=[SchedulerTiebreakRule()]
        )
        assert violations == []
