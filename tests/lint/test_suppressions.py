"""Unit tests for the suppression-comment parser."""

from repro.lint.suppressions import Suppressions


class TestScan:
    def test_line_directive(self):
        sup = Suppressions.scan("x = 1  # repro-lint: disable=RL001\n")
        assert sup.covers("RL001", 1)
        assert not sup.covers("RL001", 2)
        assert not sup.covers("RL002", 1)

    def test_multiple_codes(self):
        sup = Suppressions.scan("x = 1  # repro-lint: disable=RL001,RL003\n")
        assert sup.covers("RL001", 1)
        assert sup.covers("RL003", 1)
        assert not sup.covers("RL002", 1)

    def test_file_directive_covers_every_line(self):
        sup = Suppressions.scan("# repro-lint: disable-file=RL004\nx = 1\n")
        assert sup.covers("RL004", 1)
        assert sup.covers("RL004", 999)
        assert not sup.covers("RL001", 1)

    def test_case_and_spacing_tolerance(self):
        sup = Suppressions.scan("x = 1  #  repro-lint:  disable = rl001\n")
        assert sup.covers("RL001", 1)

    def test_plain_comments_ignored(self):
        sup = Suppressions.scan("# disable=RL001 is mentioned in prose\n")
        assert not sup.covers("RL001", 1)
        assert sup.file_level == frozenset()

    def test_unknown_future_codes_accepted(self):
        sup = Suppressions.scan("x = 1  # repro-lint: disable=RL099\n")
        assert sup.covers("RL099", 1)

    def test_directive_inside_docstring_is_documentation(self):
        source = (
            '"""Write ``# repro-lint: disable=RL001`` to suppress.\n'
            "\n"
            "Or ``# repro-lint: disable-file=RL003`` for the file.\n"
            '"""\n'
            "x = 1\n"
        )
        sup = Suppressions.scan(source)
        assert not sup.covers("RL001", 1)
        assert sup.file_level == frozenset()
        assert sup.directives == ()

    def test_broken_file_falls_back_to_line_scan(self):
        source = (
            "def broken(:\n"
            "x = 1  # repro-lint: disable=RL001\n"
        )
        sup = Suppressions.scan(source)
        assert sup.covers("RL001", 2)
