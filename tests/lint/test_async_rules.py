"""RL013-RL016 fixture tests: exact file:line:col pins per rule.

Each rule runs alone over tests/lint/fixtures/async and must produce
precisely the findings designed into its fixture -- no more, no fewer.
The *_SILENT sets name the decoy lines that look like violations but
carry a sanctioned shape; asserting disjointness keeps a regression
from trading a true positive for a false one unnoticed.
"""

import pathlib

from repro.lint.cli import lint_paths
from repro.lint.rules.rl013_blocking import AsyncBlockingRule
from repro.lint.rules.rl014_races import AsyncSharedStateRule
from repro.lint.rules.rl015_taskhygiene import AsyncTaskHygieneRule
from repro.lint.rules.rl016_typestate import SessionTypestateRule

ASYNC_FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "async"


def locations(rule):
    violations, _ = lint_paths([str(ASYNC_FIXTURES)], rules=[rule])
    assert all(v.code == rule.code for v in violations)
    return [
        (pathlib.Path(v.path).name, v.line, v.col) for v in violations
    ], violations


def lines_in(violations, name):
    return {v.line for v in violations if pathlib.Path(v.path).name == name}


class TestRL013Blocking:
    EXPECTED = [
        ("blocking_bad.py", 10, 4),
        ("blocking_bad.py", 19, 4),
        ("blocking_bad.py", 24, 4),
        ("blocking_bad.py", 40, 11),
    ]
    SILENT = {15, 30, 31, 45}

    def test_exact_findings(self):
        found, _ = locations(AsyncBlockingRule())
        assert sorted(found) == self.EXPECTED

    def test_sanctioned_shapes_stay_silent(self):
        _, violations = locations(AsyncBlockingRule())
        assert lines_in(violations, "blocking_bad.py").isdisjoint(self.SILENT)

    def test_messages_name_the_mechanism(self):
        _, violations = locations(AsyncBlockingRule())
        by_line = {v.line: v.message for v in violations}
        assert "time.sleep" in by_line[10]
        assert "_helper" in by_line[19]  # witness chain through the helper
        assert "unbounded loop" in by_line[24]
        assert "packet" in by_line[40]  # hot-path JSON variant


class TestRL014Races:
    EXPECTED = [("races_bad.py", 16, 8)]
    SILENT = {20, 26, 31}

    def test_exact_findings(self):
        found, _ = locations(AsyncSharedStateRule())
        assert sorted(found) == self.EXPECTED

    def test_atomic_guarded_and_private_stay_silent(self):
        _, violations = locations(AsyncSharedStateRule())
        assert lines_in(violations, "races_bad.py").isdisjoint(self.SILENT)

    def test_message_counts_contexts(self):
        _, violations = locations(AsyncSharedStateRule())
        message = violations[0].message
        assert "Counter.total" in message
        assert "bump_unsafe" in message
        assert "2 task contexts" in message


class TestRL015TaskHygiene:
    EXPECTED = [
        ("hygiene_bad.py", 11, 4),
        ("hygiene_bad.py", 15, 13),
        ("hygiene_bad.py", 20, 4),
        ("hygiene_bad.py", 28, 21),
    ]
    SILENT = {36, 44}

    def test_exact_findings(self):
        found, _ = locations(AsyncTaskHygieneRule())
        assert sorted(found) == self.EXPECTED

    def test_owned_and_awaited_tasks_stay_silent(self):
        _, violations = locations(AsyncTaskHygieneRule())
        assert lines_in(violations, "hygiene_bad.py").isdisjoint(self.SILENT)

    def test_messages_distinguish_failure_modes(self):
        _, violations = locations(AsyncTaskHygieneRule())
        by_line = {v.line: v.message for v in violations}
        assert "garbage-collect" in by_line[11]  # dropped handle
        assert "never" in by_line[15].lower()  # discarded handle
        assert "await" in by_line[20].lower()  # un-awaited coroutine
        assert "cancel" in by_line[28].lower()  # stored, no teardown


class TestRL016Typestate:
    EXPECTED = [
        ("typestate_bad.py", 50, 4),
        ("typestate_bad.py", 51, 11),
        ("typestate_bad.py", 52, 11),
        ("typestate_bad.py", 69, 11),
    ]
    SILENT = {56, 65, 70}

    def test_exact_findings(self):
        found, _ = locations(SessionTypestateRule())
        assert sorted(found) == self.EXPECTED

    def test_live_reads_and_rebinds_stay_silent(self):
        _, violations = locations(SessionTypestateRule())
        assert lines_in(violations, "typestate_bad.py").isdisjoint(self.SILENT)

    def test_messages_name_the_lifecycle_edge(self):
        _, violations = locations(SessionTypestateRule())
        by_line = {v.line: v.message for v in violations}
        assert "tick" in by_line[50]
        assert "rate" in by_line[51]
        assert "finish" in by_line[52]
        assert "replay" in by_line[69]


class TestFixturesSelfDescribe:
    def test_every_fixture_claims_its_rule(self):
        # Each fixture's header comment names the rule it exercises, so
        # a stray fixture cannot silently contribute findings untested.
        for path in sorted(ASYNC_FIXTURES.glob("*.py")):
            header = path.read_text().splitlines()[0]
            assert header.startswith("# RL01"), path.name
