"""AsyncGraph unit tests: the substrate under RL013-RL015.

Covers the fact layers one at a time -- coroutine/loop classification,
may-block propagation with witness chains, spawn ownership, context
construction, receiver typing, and the await-span scanner -- so a rule
regression can be localized to the layer that drifted.
"""

import ast

from repro.lint.flow.asyncgraph import AsyncGraph, ReceiverTyper
from repro.lint.flow.project import Project
from repro.lint.rules.base import FileContext


def project_of(tmp_path, sources):
    contexts = []
    for name, source in sources.items():
        path = tmp_path / f"{name}.py"
        path.write_text(source)
        contexts.append(
            FileContext(
                path=path.resolve(),
                display_path=str(path),
                source=source,
                tree=ast.parse(source),
            )
        )
    return Project.build(contexts)


def graph_of(tmp_path, sources) -> AsyncGraph:
    return project_of(tmp_path, sources).asyncgraph()


class TestLoopClassification:
    def test_coroutines_are_on_loop(self, tmp_path):
        graph = graph_of(tmp_path, {"m": (
            "import asyncio\n"
            "async def coro():\n"
            "    await asyncio.sleep(0)\n"
            "def plain():\n"
            "    return 1\n"
        )})
        assert graph.functions["m.coro"].is_coroutine
        assert graph.functions["m.coro"].on_loop
        assert not graph.functions["m.plain"].on_loop

    def test_protocol_callbacks_are_on_loop(self, tmp_path):
        graph = graph_of(tmp_path, {"m": (
            "import asyncio\n"
            "class Proto(asyncio.DatagramProtocol):\n"
            "    def datagram_received(self, data, addr):\n"
            "        pass\n"
            "    def helper(self):\n"
            "        pass\n"
            "class NotAProto:\n"
            "    def datagram_received(self, data, addr):\n"
            "        pass\n"
        )})
        facts = graph.functions["m.Proto.datagram_received"]
        assert facts.on_loop and facts.packet_callback
        assert not graph.functions["m.Proto.helper"].on_loop
        assert not graph.functions["m.NotAProto.datagram_received"].on_loop

    def test_scheduled_callbacks_are_on_loop(self, tmp_path):
        graph = graph_of(tmp_path, {"m": (
            "import asyncio\n"
            "def tick():\n"
            "    pass\n"
            "def arm():\n"
            "    loop = asyncio.get_event_loop()\n"
            "    loop.call_later(0.1, tick)\n"
        )})
        assert graph.functions["m.tick"].on_loop
        assert not graph.functions["m.arm"].on_loop


class TestMayBlockPropagation:
    def test_witness_chain_reaches_the_leaf(self, tmp_path):
        graph = graph_of(tmp_path, {"m": (
            "import time\n"
            "def leaf():\n"
            "    time.sleep(1)\n"
            "def mid():\n"
            "    leaf()\n"
            "def top():\n"
            "    mid()\n"
        )})
        verdict = graph.functions["m.top"].may_block
        assert verdict is not None
        assert verdict.what == "time.sleep"
        assert "mid" in verdict.describe()

    def test_executor_handoff_is_exempt(self, tmp_path):
        graph = graph_of(tmp_path, {"m": (
            "import asyncio\n"
            "import time\n"
            "async def ok():\n"
            "    loop = asyncio.get_running_loop()\n"
            "    await loop.run_in_executor(None, time.sleep, 1)\n"
        )})
        assert graph.functions["m.ok"].blocking == []
        assert graph.functions["m.ok"].may_block is None

    def test_cpu_loop_with_await_is_fine(self, tmp_path):
        graph = graph_of(tmp_path, {"m": (
            "import asyncio\n"
            "async def pump():\n"
            "    while True:\n"
            "        await asyncio.sleep(0)\n"
            "async def spin():\n"
            "    while True:\n"
            "        pass\n"
        )})
        assert graph.functions["m.pump"].blocking == []
        spins = graph.functions["m.spin"].blocking
        assert [site.what for site in spins] == ["unbounded loop"]


class TestSpawnOwnership:
    SOURCE = (
        "import asyncio\n"
        "async def work():\n"
        "    await asyncio.sleep(0)\n"
        "async def dropper():\n"
        "    asyncio.create_task(work())\n"
        "async def discarder():\n"
        "    t = asyncio.create_task(work())\n"
        "    await asyncio.sleep(0)\n"
        "async def keeper():\n"
        "    t = asyncio.create_task(work())\n"
        "    await t\n"
        "class Owner:\n"
        "    def start(self):\n"
        "        self._t = asyncio.create_task(work())\n"
        "    def stop(self):\n"
        "        self._t.cancel()\n"
    )

    def test_ownership_classes(self, tmp_path):
        graph = graph_of(tmp_path, {"m": self.SOURCE})
        by_spawner = {
            s.spawner.rsplit(".", 1)[-1]: s for s in graph.spawns
        }
        assert by_spawner["dropper"].ownership == "dropped"
        assert by_spawner["discarder"].ownership == "discarded"
        assert by_spawner["keeper"].ownership == "retained"
        stored = by_spawner["start"]
        assert stored.ownership == "stored"
        assert stored.stored_attr == ("m.Owner", "_t")
        assert stored.cancelled  # Owner.stop() cancels

    def test_spawn_targets_resolve(self, tmp_path):
        graph = graph_of(tmp_path, {"m": self.SOURCE})
        assert {s.target for s in graph.spawns} == {"m.work"}


class TestContexts:
    def test_each_spawn_target_roots_a_context(self, tmp_path):
        graph = graph_of(tmp_path, {"m": (
            "import asyncio\n"
            "async def a():\n"
            "    await asyncio.sleep(0)\n"
            "async def b():\n"
            "    await a()\n"
            "async def main():\n"
            "    t1 = asyncio.create_task(a())\n"
            "    t2 = asyncio.create_task(b())\n"
            "    await t1\n"
            "    await t2\n"
            "def entry():\n"
            "    asyncio.run(main())\n"
        )})
        assert "m.a" in graph.contexts
        assert "m.b" in graph.contexts
        assert "m.main" in graph.contexts  # asyncio.run root
        # b's context includes what b awaits.
        assert "m.a" in graph.contexts["m.b"]

    def test_loop_context_excludes_unspawned_coroutines(self, tmp_path):
        graph = graph_of(tmp_path, {"m": (
            "import asyncio\n"
            "async def coro():\n"
            "    await asyncio.sleep(0)\n"
            "class Proto(asyncio.DatagramProtocol):\n"
            "    def datagram_received(self, data, addr):\n"
            "        asyncio.create_task(coro())\n"
        )})
        loop_members = graph.contexts["loop"]
        assert "m.Proto.datagram_received" in loop_members
        # The callback *creates* coro; it does not run inside it.
        assert "m.coro" not in loop_members


class TestReceiverTyper:
    def test_constructed_local_and_annotated_param(self, tmp_path):
        project = project_of(tmp_path, {"m": (
            "class Box:\n"
            "    def poke(self):\n"
            "        pass\n"
            "def use_local():\n"
            "    b = Box()\n"
            "    b.poke()\n"
            "def use_param(b: Box):\n"
            "    b.poke()\n"
        )})
        graph = project.call_graph()
        for fn in ("m.use_local", "m.use_param"):
            typer = ReceiverTyper(project, graph.nodes[fn])
            call = next(
                n for n in ast.walk(graph.nodes[fn].func.node)
                if isinstance(n, ast.Call)
                and not isinstance(n.func, ast.Name)
            )
            owner = typer.class_of(call.func.value)
            assert owner is not None and owner.qualname == "m.Box"

    def test_conflicting_assignments_stay_untyped(self, tmp_path):
        project = project_of(tmp_path, {"m": (
            "class A:\n"
            "    def poke(self):\n"
            "        pass\n"
            "class B:\n"
            "    def poke(self):\n"
            "        pass\n"
            "def ambiguous(flag):\n"
            "    x = A()\n"
            "    if flag:\n"
            "        x = B()\n"
            "    x.poke()\n"
        )})
        graph = project.call_graph()
        typer = ReceiverTyper(project, graph.nodes["m.ambiguous"])
        name = ast.parse("x").body[0].value
        assert typer.class_of(name) is None


class TestSpanScanner:
    def test_read_await_write_spans(self, tmp_path):
        graph = graph_of(tmp_path, {"m": (
            "import asyncio\n"
            "class C:\n"
            "    async def racy(self):\n"
            "        before = self.n\n"
            "        await asyncio.sleep(0)\n"
            "        self.n = before + 1\n"
        )})
        spans = graph.spans["m.C.racy"]
        assert [(s.owner, s.attr) for s in spans] == [("m.C", "n")]

    def test_single_statement_update_is_atomic(self, tmp_path):
        graph = graph_of(tmp_path, {"m": (
            "import asyncio\n"
            "class C:\n"
            "    async def fine(self):\n"
            "        await asyncio.sleep(0)\n"
            "        self.n += 1\n"
        )})
        assert graph.spans["m.C.fine"] == []

    def test_loop_unrolling_pairs_iterations(self, tmp_path):
        # The read in iteration N pairs with the write in iteration N+1;
        # a single pass over the body would see write-before-read and
        # find nothing.
        graph = graph_of(tmp_path, {"m": (
            "import asyncio\n"
            "class C:\n"
            "    async def pump(self):\n"
            "        while True:\n"
            "            await asyncio.sleep(0)\n"
            "            self.buf = []\n"
            "            items = self.buf\n"
        )})
        spans = graph.spans["m.C.pump"]
        assert [(s.owner, s.attr) for s in spans] == [("m.C", "buf")]

    def test_same_statement_across_iterations_is_exempt(self, tmp_path):
        # One self-contained write per iteration re-pairs only with its
        # own statement under unrolling, which the pairer discards.
        graph = graph_of(tmp_path, {"m": (
            "import asyncio\n"
            "class C:\n"
            "    async def pump(self):\n"
            "        while True:\n"
            "            self.buf = []\n"
            "            await asyncio.sleep(0)\n"
        )})
        assert graph.spans["m.C.pump"] == []

    def test_lock_guard_suppresses_events(self, tmp_path):
        graph = graph_of(tmp_path, {"m": (
            "import asyncio\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = asyncio.Lock()\n"
            "    async def guarded(self):\n"
            "        async with self._lock:\n"
            "            before = self.n\n"
            "            await asyncio.sleep(0)\n"
            "            self.n = before + 1\n"
        )})
        assert graph.spans["m.C.guarded"] == []
        assert ("m.C", "n") in graph.guarded_keys()

    def test_init_accesses_are_construction_handoff(self, tmp_path):
        graph = graph_of(tmp_path, {"m": (
            "class C:\n"
            "    def __init__(self):\n"
            "        self.n = 0\n"
        )})
        assert graph.functions["m.C.__init__"].accesses == []
