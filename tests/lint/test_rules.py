"""Each rule demonstrated failing (and passing) on purpose-built fixtures."""

import pathlib

from repro.lint import lint_paths

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def lint_fixture(*parts):
    path = FIXTURES.joinpath(*parts)
    violations, files_checked = lint_paths([str(path)])
    assert files_checked == 1
    return violations


def codes_and_lines(violations):
    return [(v.code, v.line) for v in violations]


class TestRL001Determinism:
    def test_flags_every_hazard(self):
        violations = lint_fixture("sim", "bad_random.py")
        assert codes_and_lines(violations) == [
            ("RL001", 12),  # import random (the REDQueue fallback bug)
            ("RL001", 14),  # random.Random(0)
            ("RL001", 19),  # import numpy.random
            ("RL001", 21),  # numpy.random.rand()
            ("RL001", 25),  # from time import perf_counter
            ("RL001", 34),  # for ... in {set comprehension}
            ("RL001", 36),  # list({...})
        ]

    def test_clean_seeded_code_passes(self):
        assert lint_fixture("sim", "good_seeded.py") == []

    def test_asyncio_timers_banned_in_sim_zones(self):
        violations = lint_fixture("sim", "bad_asyncio.py")
        assert codes_and_lines(violations) == [
            ("RL001", 9),   # import asyncio
            ("RL001", 11),  # asyncio.get_event_loop()
            ("RL001", 15),  # from asyncio import sleep
            ("RL001", 21),  # loop.time()
            ("RL001", 25),  # _loop.time()
        ]

    def test_service_zone_keeps_its_wall_clock(self):
        # The same asyncio/time idioms that fail under sim/ are the
        # service zone's whole point.
        assert lint_fixture("service", "clean_service.py") == []

    def test_service_zone_still_bans_entropy(self):
        violations = lint_fixture("service", "bad_service_random.py")
        assert codes_and_lines(violations) == [
            ("RL001", 11),  # import random
            ("RL001", 13),  # random.random()
            ("RL001", 19),  # uuid.uuid4()
            ("RL001", 23),  # list over a set comprehension
        ]

    def test_scoped_to_simulation_dirs(self, tmp_path):
        # The same hazards outside sim/core/transport/media are ignored.
        outside = tmp_path / "tools" / "helper.py"
        outside.parent.mkdir()
        outside.write_text("import random\nx = random.random()\n")
        violations, _ = lint_paths([str(outside)])
        assert violations == []


class TestRL002ExperimentProtocol:
    def test_compliant_module_passes(self):
        assert lint_fixture("experiments", "fig_good.py") == []

    def test_unregistered_module_flagged(self):
        violations = lint_fixture("experiments", "fig_unregistered.py")
        assert [v.code for v in violations] == ["RL002"]
        assert "not registered in EXPERIMENTS" in violations[0].message

    def test_protocol_breaches_flagged(self):
        violations = lint_fixture("experiments", "fig_badproto.py")
        messages = [v.message for v in violations]
        assert [v.code for v in violations] == ["RL002"] * 3
        assert any("without defaults" in m for m in messages)
        assert any("seed" in m for m in messages)
        assert any("render" in m for m in messages)

    def test_infrastructure_stems_exempt(self):
        # common/runner/cache in an experiments dir are not experiments.
        violations, _ = lint_paths(
            [str(FIXTURES / "experiments" / "__init__.py")]
        )
        assert violations == []


class TestRL003UnitsDiscipline:
    def test_flags_mixed_arithmetic(self):
        violations = lint_fixture("core", "formulas.py")
        assert codes_and_lines(violations) == [
            ("RL003", 12),  # helper value + raw literal
            ("RL003", 16),  # helper value > raw literal
            ("RL003", 20),  # units.ms(...) - raw literal
        ]
        # Mult scaling, zero comparisons and the annotated line pass.

    def test_clean_units_code_passes(self):
        assert lint_fixture("core", "clean_units.py") == []


class TestRL004CacheKeyHygiene:
    def test_flags_dynamic_imports(self):
        violations = lint_fixture("experiments", "fig_dynamic.py")
        assert codes_and_lines(violations) == [
            ("RL004", 3),  # import importlib
            ("RL004", 8),  # __import__(...)
        ]

    def test_static_imports_pass(self):
        assert lint_fixture("experiments", "fig_good.py") == []


class TestSuppressions:
    def test_line_and_file_directives(self):
        violations = lint_fixture("sim", "suppressed.py")
        # Only the deliberately unsuppressed hazard survives.
        assert codes_and_lines(violations) == [("RL001", 18)]


class TestSelfCheck:
    def test_src_tree_is_clean(self):
        repo_root = pathlib.Path(__file__).resolve().parents[2]
        violations, files_checked = lint_paths([str(repo_root / "src")])
        assert violations == []
        assert files_checked > 50  # the whole package, not a subset
