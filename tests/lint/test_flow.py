"""Unit tests for the repro.lint.flow dataflow layer.

Covers the pieces the flow rules stand on: the dimension algebra, module
naming and the project-internal import graph, annotation resolution,
class-attribute typing (the call-summary layer), the expression engine,
and the round-trip between the lint-side ``UNIT_ALIASES`` table and the
runtime ``repro.core.units`` module it mirrors.
"""

import ast
import typing
from fractions import Fraction

import repro.core.units as runtime_units
from repro.lint.flow import Project, UNIT_ALIASES, analyze_module
from repro.lint.flow.units import (
    BYTES,
    BYTES_PER_SEC,
    BYTES_PER_SEC2,
    DIMENSIONLESS,
    SECONDS,
)
from repro.lint.rules.base import FileContext


def build_project(tmp_path, files):
    """Write ``{relative path: source}`` to disk and build a Project."""
    contexts = []
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        contexts.append(
            FileContext(
                path=path.resolve(),
                display_path=str(path),
                source=source,
                tree=ast.parse(source),
            )
        )
    return Project.build(contexts)


class TestDimAlgebra:
    def test_multiplication_and_division(self):
        assert BYTES_PER_SEC2 * SECONDS == BYTES_PER_SEC
        assert BYTES / SECONDS == BYTES_PER_SEC
        assert BYTES_PER_SEC / BYTES_PER_SEC == DIMENSIONLESS

    def test_sqrt_halves_exponents(self):
        # The drop rule's right-hand side: sqrt(2*S*total_buf) is a rate.
        assert (BYTES_PER_SEC2 * BYTES) ** Fraction(1, 2) == BYTES_PER_SEC

    def test_render(self):
        assert BYTES.render() == "B"
        assert SECONDS.render() == "s"
        assert BYTES_PER_SEC.render() == "B/s"
        assert BYTES_PER_SEC2.render() == "B/s^2"
        assert DIMENSIONLESS.render() == "1"
        assert (BYTES ** Fraction(1, 2)).render() == "B^1/2"

    def test_dimensionless_flag(self):
        assert DIMENSIONLESS.dimensionless
        assert not BYTES.dimensionless


class TestUnitAliasRoundTrip:
    def test_lint_table_matches_runtime_markers(self):
        for name, dim in UNIT_ALIASES.items():
            alias = getattr(runtime_units, name)
            _, marker = typing.get_args(alias)
            assert isinstance(marker, runtime_units.Unit), name
            assert Fraction(marker.data) == dim.data, name
            assert Fraction(marker.time) == dim.time, name

    def test_every_runtime_alias_is_covered(self):
        runtime_names = set()
        for name in dir(runtime_units):
            args = typing.get_args(getattr(runtime_units, name))
            if args and isinstance(args[-1], runtime_units.Unit):
                runtime_names.add(name)
        assert runtime_names == set(UNIT_ALIASES)


class TestProjectStructure:
    def test_package_module_naming(self, tmp_path):
        project = build_project(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/sub/__init__.py": "",
                "pkg/sub/mod.py": "X = 1\n",
                "standalone.py": "Y = 2\n",
            },
        )
        assert "pkg.sub.mod" in project.modules
        assert "standalone" in project.modules

    def test_import_graph_is_project_internal(self, tmp_path):
        project = build_project(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/a.py": "import math\n\nfrom pkg.b import helper\n",
                "pkg/b.py": "def helper():\n    return 1\n",
            },
        )
        graph = project.import_graph()
        assert graph["pkg.a"] == {"pkg.b"}  # math is external: no edge
        assert graph["pkg.b"] == set()

    def test_resolve_function_and_class(self, tmp_path):
        project = build_project(
            tmp_path,
            {
                "mod.py": (
                    "def takeover(rate, slope):\n"
                    "    return rate / slope\n"
                    "\n"
                    "\n"
                    "class Adapter:\n"
                    "    pass\n"
                ),
            },
        )
        resolved = project.resolve_function("mod.takeover")
        assert resolved is not None
        module, func = resolved
        assert module == "mod"
        assert [p.name for p in func.params] == ["rate", "slope"]
        assert project.resolve_class("mod.Adapter") is not None
        assert project.resolve_class("mod.Missing") is None


ANNOTATED_MODULE = """\
from typing import Optional

from repro.core.units import Bytes, BytesPerSec, BytesPerSec2, Seconds


def shapes(plain: Bytes,
           opt: Optional[Bytes],
           table: dict[str, BytesPerSec],
           trail: tuple[Seconds, ...]) -> None:
    pass


class Adapter:
    def __init__(self, rate: BytesPerSec) -> None:
        self.rate = rate
        self.level: Bytes = 0.0
        self.history: list[Bytes] = []

    @property
    def slope(self) -> BytesPerSec2:
        return self.rate / 10.0
"""


class TestAnnotationResolution:
    def test_unit_annotations_resolve_to_dims(self, tmp_path):
        project = build_project(tmp_path, {"mod.py": ANNOTATED_MODULE})
        _, func = project.resolve_function("mod.shapes")
        refs = {
            p.name: project.resolve_annotation("mod", p.annotation)
            for p in func.params
        }
        assert refs["plain"].kind == "num"
        assert refs["plain"].dim == BYTES
        assert refs["opt"].kind == "num"  # Optional unwraps
        assert refs["opt"].dim == BYTES
        assert refs["table"].kind == "map"
        assert refs["table"].elem.dim == BYTES_PER_SEC
        assert refs["trail"].kind == "seq"  # homogeneous tuple
        assert refs["trail"].elem.dim == SECONDS

    def test_attr_types_from_init_and_properties(self, tmp_path):
        project = build_project(tmp_path, {"mod.py": ANNOTATED_MODULE})
        info = project.resolve_class("mod.Adapter")
        rate = project.attr_type(info, "rate")  # from the param binding
        assert rate.kind == "num" and rate.dim == BYTES_PER_SEC
        level = project.attr_type(info, "level")  # from the AnnAssign
        assert level.kind == "num" and level.dim == BYTES
        history = project.attr_type(info, "history")
        assert history.kind == "seq" and history.elem.dim == BYTES
        slope = project.attr_type(info, "slope")  # property return
        assert slope.kind == "num" and slope.dim == BYTES_PER_SEC2


class TestAnalyzeModule:
    CLEAN = """\
import math

from repro.core.units import Bytes, BytesPerSec, BytesPerSec2


def drop_rule(na: int, consumption: BytesPerSec, rate: BytesPerSec,
              slope: BytesPerSec2, total_buf: Bytes) -> bool:
    return na * consumption - rate >= math.sqrt(2 * slope * total_buf)
"""

    BAD = """\
from repro.core.units import BytesPerSec, Seconds


def broken(rate: BytesPerSec, elapsed: Seconds) -> float:
    return rate + elapsed
"""

    def test_correct_drop_rule_is_silent(self, tmp_path):
        project = build_project(tmp_path, {"clean.py": self.CLEAN})
        assert analyze_module(project, "clean") == []

    def test_mismatch_is_reported_with_dims(self, tmp_path):
        project = build_project(tmp_path, {"bad.py": self.BAD})
        found = analyze_module(project, "bad")
        assert len(found) == 1
        func, mismatch = found[0]
        assert func.name == "broken"
        assert "B/s + s" in mismatch.message
        assert mismatch.node.lineno == 5
