"""Incremental analysis cache: hits, misses, cone invalidation, flags.

The cache must be invisible in the results -- every test asserts the
cached run reports exactly what a cold run would -- while the
instrumented tests pin down *what* was skipped: full hits parse
nothing, partial hits scope flow analysis to the dirty import cone.
"""

import json

import pytest

import repro.lint.cli as cli
from repro.lint import lint_paths
from repro.lint.cli import main
from repro.lint.rules.rl011_simtime import SimTimeRule

BAD_NUMPY = "import numpy as np\nBAD = np.zeros(4)\n"
GOOD_NUMPY = "import numpy as np\nGOOD = np.zeros(4, dtype=np.float64)\n"


def keyed(violations):
    return [(v.path, v.line, v.col, v.code, v.message) for v in violations]


@pytest.fixture
def proj(tmp_path):
    src = tmp_path / "proj"
    src.mkdir()
    return src


@pytest.fixture
def cache_dir(tmp_path):
    return tmp_path / "cache"


class TestFullHit:
    def test_warm_run_replays_without_parsing(
        self, proj, cache_dir, monkeypatch
    ):
        (proj / "mod.py").write_text(BAD_NUMPY)
        cold, n_cold = lint_paths([str(proj)], cache_dir=cache_dir)
        assert [v.code for v in cold] == ["RL012"]

        def boom(*args, **kwargs):
            raise AssertionError("full hit must not parse any file")

        monkeypatch.setattr(cli, "_make_entry", boom)
        warm, n_warm = lint_paths([str(proj)], cache_dir=cache_dir)
        assert keyed(warm) == keyed(cold)
        assert n_warm == n_cold

    def test_source_edit_misses_and_recomputes(self, proj, cache_dir):
        target = proj / "mod.py"
        target.write_text(BAD_NUMPY)
        cold, _ = lint_paths([str(proj)], cache_dir=cache_dir)
        assert len(cold) == 1
        target.write_text(GOOD_NUMPY)
        warm, _ = lint_paths([str(proj)], cache_dir=cache_dir)
        assert warm == []

    def test_added_and_removed_files_miss(self, proj, cache_dir):
        (proj / "a.py").write_text(GOOD_NUMPY)
        lint_paths([str(proj)], cache_dir=cache_dir)
        extra = proj / "b.py"
        extra.write_text(BAD_NUMPY)
        grown, _ = lint_paths([str(proj)], cache_dir=cache_dir)
        assert [v.code for v in grown] == ["RL012"]
        extra.unlink()
        shrunk, _ = lint_paths([str(proj)], cache_dir=cache_dir)
        assert shrunk == []

    def test_corrupt_index_falls_back_to_cold(self, proj, cache_dir):
        (proj / "mod.py").write_text(BAD_NUMPY)
        cold, _ = lint_paths([str(proj)], cache_dir=cache_dir)
        for index in cache_dir.glob("index-*.json"):
            index.write_text("{not json")
        again, _ = lint_paths([str(proj)], cache_dir=cache_dir)
        assert keyed(again) == keyed(cold)


class TestConeInvalidation:
    A = (
        "from b import helper\n"
        "def go(sim, cb):\n"
        "    sim.schedule(helper(), cb, priority=0)\n"
    )
    B_CLEAN = "def helper():\n    return 0.5\n"
    B_BYTES = (
        "from repro.core.units import Bytes\n"
        "def helper():\n"
        "    return Bytes(1500.0)\n"
    )

    def test_dependency_edit_invalidates_dependent(self, proj, cache_dir):
        (proj / "a.py").write_text(self.A)
        b = proj / "b.py"
        b.write_text(self.B_CLEAN)
        clean, _ = lint_paths([str(proj)], cache_dir=cache_dir)
        assert clean == []

        # a.py is untouched, but b's return type now carries bytes: the
        # finding must appear in a.py via reverse-cone invalidation.
        b.write_text(self.B_BYTES)
        dirty, _ = lint_paths([str(proj)], cache_dir=cache_dir)
        assert [v.code for v in dirty] == ["RL011"]
        assert dirty[0].path.endswith("a.py")

        b.write_text(self.B_CLEAN)
        reverted, _ = lint_paths([str(proj)], cache_dir=cache_dir)
        assert reverted == []

    def test_partial_run_scopes_flow_to_dirty_cone(
        self, proj, cache_dir, monkeypatch
    ):
        (proj / "x.py").write_text("def left():\n    return 1\n")
        (proj / "y.py").write_text("def right():\n    return 2\n")
        lint_paths([str(proj)], cache_dir=cache_dir)

        seen = []
        original = SimTimeRule.check_project

        def spy(self, project, only=None):
            seen.append(only)
            return original(self, project, only=only)

        monkeypatch.setattr(SimTimeRule, "check_project", spy)
        (proj / "y.py").write_text("def right():\n    return 3\n")
        lint_paths([str(proj)], cache_dir=cache_dir)
        assert seen == [frozenset({"y"})]


class TestFlagComposition:
    def test_changed_filters_on_top_of_cache(
        self, proj, cache_dir, monkeypatch, capsys
    ):
        import subprocess

        (proj / "mod.py").write_text(BAD_NUMPY)
        (proj / "other.py").write_text(GOOD_NUMPY)
        monkeypatch.chdir(proj)
        for cmd in (
            ["git", "init", "-q"],
            ["git", "add", "."],
            ["git", "-c", "user.email=t@t", "-c", "user.name=t",
             "commit", "-qm", "seed"],
        ):
            subprocess.run(cmd, check=True)
        args = [str(proj), "--cache-dir", str(cache_dir)]
        assert main(args) == 1  # cold: violation reported
        capsys.readouterr()

        # Warm + --changed with a clean diff: the cached finding is in
        # an unchanged file, so nothing is reported.
        assert main(args + ["--changed"]) == 0
        capsys.readouterr()

        # Touch the violating file: --changed reports it again, through
        # the (now partially invalidated) cache.
        (proj / "mod.py").write_text(BAD_NUMPY + "# touched\n")
        assert main(args + ["--changed"]) == 1
        out = capsys.readouterr()
        assert "RL012" in out.out

    def test_show_suppressed_audits_from_cached_directives(
        self, proj, cache_dir, capsys, monkeypatch
    ):
        (proj / "mod.py").write_text(
            "import numpy as np\n"
            "PAD = np.zeros(4)  # repro-lint: disable=RL012\n"
            "OK = 1  # repro-lint: disable=RL001\n"
        )
        args = [str(proj), "--cache-dir", str(cache_dir)]
        assert main(args) == 0  # populate: the RL012 finding is suppressed
        capsys.readouterr()

        def boom(*a, **k):
            raise AssertionError("full hit must not parse any file")

        monkeypatch.setattr(cli, "_make_entry", boom)
        assert main(args + ["--show-suppressed"]) == 1
        out = capsys.readouterr().out
        assert "disable=RL012 used" in out
        assert "disable=RL001 STALE" in out

    def test_no_cache_flag_bypasses_the_index(self, proj, cache_dir):
        (proj / "mod.py").write_text(BAD_NUMPY)
        args = [str(proj), "--cache-dir", str(cache_dir)]
        assert main(args + ["--no-cache"]) == 1
        assert list(cache_dir.glob("index-*.json")) == []
        assert main(args) == 1
        assert len(list(cache_dir.glob("index-*.json"))) == 1

    def test_rule_subsets_cache_independently(self, proj, cache_dir):
        (proj / "mod.py").write_text(BAD_NUMPY)
        full, _ = lint_paths([str(proj)], cache_dir=cache_dir)
        assert [v.code for v in full] == ["RL012"]
        from repro.lint.rules import SimTimeRule as STR

        subset, _ = lint_paths(
            [str(proj)], rules=[STR()], cache_dir=cache_dir
        )
        assert subset == []
        again, _ = lint_paths([str(proj)], cache_dir=cache_dir)
        assert [v.code for v in again] == ["RL012"]
        assert len(list(cache_dir.glob("index-*.json"))) == 2


class TestIndexIntegrity:
    def test_raw_findings_are_cached_pre_suppression(
        self, proj, cache_dir
    ):
        (proj / "mod.py").write_text(
            "import numpy as np\n"
            "PAD = np.zeros(4)  # repro-lint: disable=RL012\n"
        )
        suppressed, _ = lint_paths([str(proj)], cache_dir=cache_dir)
        assert suppressed == []
        index = json.loads(
            next(cache_dir.glob("index-*.json")).read_text()
        )
        record = next(iter(index["files"].values()))
        assert [row[3] for row in record["per_file"]] == []
        assert [row[3] for row in record["flow"]] == ["RL012"]
        assert record["directives"] == [[2, "RL012", False]]


class TestAsyncConeInvalidation:
    """The async digest layer: forward *union reverse* import closure.

    RL013-RL015 findings in a coroutine module can depend on who spawns
    it -- context membership is a property of the *importer*. A plain
    forward cone never re-analyzes the coroutine module when only the
    spawner changed, so async-facts rules carry their own digest.
    """

    WORK = (
        "import asyncio\n"
        "\n"
        "\n"
        "class Counter:\n"
        "    def __init__(self):\n"
        "        self.total = 0\n"
        "\n"
        "    async def bump(self):\n"
        "        before = self.total\n"
        "        await asyncio.sleep(0)\n"
        "        self.total = before + 1\n"
    )
    RUNNER_AWAITS = (
        "import asyncio\n"
        "\n"
        "from work import Counter\n"
        "\n"
        "\n"
        "async def main():\n"
        "    counter = Counter()\n"
        "    await counter.bump()\n"
        "    print(counter.total)\n"
        "\n"
        "\n"
        "def entry():\n"
        "    asyncio.run(main())\n"
    )
    RUNNER_SPAWNS = (
        "import asyncio\n"
        "\n"
        "from work import Counter\n"
        "\n"
        "\n"
        "async def main():\n"
        "    counter = Counter()\n"
        "    task = asyncio.create_task(counter.bump())\n"
        "    print(counter.total)\n"
        "    await task\n"
        "\n"
        "\n"
        "def entry():\n"
        "    asyncio.run(main())\n"
    )

    def test_reverse_closure_digest_property(self):
        from repro.lint.cache import async_digests, cone_digests

        graph = {"work": set(), "runner": {"work"}}
        before = {"work": "sha-w", "runner": "sha-r"}
        after = {"work": "sha-w", "runner": "sha-r2"}  # runner edited
        assert (
            cone_digests(graph, before)["work"]
            == cone_digests(graph, after)["work"]
        )
        assert (
            async_digests(graph, before)["work"]
            != async_digests(graph, after)["work"]
        )

    def test_spawner_edit_reanalyzes_coroutine_module(self, proj, cache_dir):
        (proj / "work.py").write_text(self.WORK)
        runner = proj / "runner.py"
        runner.write_text(self.RUNNER_AWAITS)
        clean, _ = lint_paths([str(proj)], cache_dir=cache_dir)
        assert clean == []  # one context: await runs bump inline

        # work.py is untouched and its forward cone is unchanged, but
        # the spawner now runs bump() in a second task context: the
        # race must surface in work.py via the reverse closure.
        runner.write_text(self.RUNNER_SPAWNS)
        dirty, _ = lint_paths([str(proj)], cache_dir=cache_dir)
        assert [v.code for v in dirty] == ["RL014"]
        assert dirty[0].path.endswith("work.py")

        runner.write_text(self.RUNNER_AWAITS)
        reverted, _ = lint_paths([str(proj)], cache_dir=cache_dir)
        assert reverted == []

    def test_coroutine_edit_reanalyzes_spawner_side(self, proj, cache_dir):
        work = proj / "work.py"
        atomic = self.WORK.replace(
            "        before = self.total\n"
            "        await asyncio.sleep(0)\n"
            "        self.total = before + 1\n",
            "        await asyncio.sleep(0)\n"
            "        self.total += 1\n",
        )
        assert atomic != self.WORK
        work.write_text(atomic)
        (proj / "runner.py").write_text(self.RUNNER_SPAWNS)
        clean, _ = lint_paths([str(proj)], cache_dir=cache_dir)
        assert clean == []  # atomic update: no spanning write

        work.write_text(self.WORK)
        dirty, _ = lint_paths([str(proj)], cache_dir=cache_dir)
        assert [v.code for v in dirty] == ["RL014"]

    def test_async_scope_widens_only_for_async_rules(
        self, proj, cache_dir, monkeypatch
    ):
        from repro.lint.rules.rl014_races import AsyncSharedStateRule

        (proj / "work.py").write_text(self.WORK)
        (proj / "runner.py").write_text(self.RUNNER_AWAITS)
        (proj / "island.py").write_text("def alone():\n    return 0\n")
        lint_paths([str(proj)], cache_dir=cache_dir)

        plain_seen, async_seen = [], []
        plain_orig = SimTimeRule.check_project
        async_orig = AsyncSharedStateRule.check_project

        def plain_spy(self, project, only=None):
            plain_seen.append(only)
            return plain_orig(self, project, only=only)

        def async_spy(self, project, only=None):
            async_seen.append(only)
            return async_orig(self, project, only=only)

        monkeypatch.setattr(SimTimeRule, "check_project", plain_spy)
        monkeypatch.setattr(
            AsyncSharedStateRule, "check_project", async_spy
        )
        (proj / "runner.py").write_text(self.RUNNER_SPAWNS)
        lint_paths([str(proj)], cache_dir=cache_dir)
        # Plain cone rules re-check only the edited module; async-facts
        # rules also re-check the coroutine module it reaches into.
        assert plain_seen == [frozenset({"runner"})]
        assert async_seen == [frozenset({"runner", "work"})]

    def test_full_hit_replays_async_findings(
        self, proj, cache_dir, monkeypatch
    ):
        (proj / "work.py").write_text(self.WORK)
        (proj / "runner.py").write_text(self.RUNNER_SPAWNS)
        cold, _ = lint_paths([str(proj)], cache_dir=cache_dir)
        assert [v.code for v in cold] == ["RL014"]

        def boom(*args, **kwargs):
            raise AssertionError("full hit must not parse any file")

        monkeypatch.setattr(cli, "_make_entry", boom)
        warm, _ = lint_paths([str(proj)], cache_dir=cache_dir)
        assert keyed(warm) == keyed(cold)
