"""Call-graph builder and function summaries: unit tests.

These are the interprocedural substrate under RL005-RL012: definite-only
call edges, bounded reachability, and per-function summaries (RNG
origin, branch-aware RNG fanout, hook returns, global writes) that
propagate across call boundaries to a fixed point.
"""

import ast
import pathlib

from repro.lint.flow.project import Project
from repro.lint.rules.base import FileContext


def project_of(tmp_path, sources):
    contexts = []
    for name, source in sources.items():
        path = tmp_path / f"{name}.py"
        path.write_text(source)
        contexts.append(
            FileContext(
                path=path.resolve(),
                display_path=str(path),
                source=source,
                tree=ast.parse(source),
            )
        )
    return Project.build(contexts)


class TestCallGraphEdges:
    def test_direct_and_imported_calls(self, tmp_path):
        project = project_of(tmp_path, {
            "util": "def leaf():\n    return 1\n",
            "app": (
                "from util import leaf\n"
                "def mid():\n"
                "    return leaf()\n"
                "def top():\n"
                "    return mid()\n"
            ),
        })
        graph = project.call_graph()
        assert "util.leaf" in graph.callees("app.mid")
        assert "app.mid" in graph.callees("app.top")
        assert "app.top" in graph.callers("app.mid")

    def test_self_method_and_ctor_edges(self, tmp_path):
        project = project_of(tmp_path, {
            "obj": (
                "class Box:\n"
                "    def __init__(self):\n"
                "        self.n = 0\n"
                "    def bump(self):\n"
                "        self.n += 1\n"
                "    def twice(self):\n"
                "        self.bump()\n"
                "        self.bump()\n"
                "def make():\n"
                "    return Box()\n"
            ),
        })
        graph = project.call_graph()
        assert "obj.Box.bump" in graph.callees("obj.Box.twice")
        assert "obj.Box.__init__" in graph.callees("obj.make")

    def test_reachable_is_depth_bounded(self, tmp_path):
        chain = "\n".join(
            f"def f{i}():\n    return f{i + 1}()" for i in range(10)
        ) + "\ndef f10():\n    return 0\n"
        project = project_of(tmp_path, {"chain": chain})
        graph = project.call_graph()
        near = graph.reachable("chain.f0", max_depth=2)
        assert "chain.f2" in near
        assert "chain.f3" not in near
        far = graph.reachable("chain.f0", max_depth=10)
        assert "chain.f10" in far


class TestSummaries:
    def test_rng_origin_propagates_through_wrappers(self, tmp_path):
        project = project_of(tmp_path, {
            "rngs": (
                "import random\n"
                "def fresh(parent):\n"
                "    return parent.spawn('x')\n"
                "def wrapped(parent):\n"
                "    return fresh(parent)\n"
                "def rogue():\n"
                "    return random.Random(7)\n"
                "def rogue_wrapped():\n"
                "    return rogue()\n"
            ),
        })
        summaries = project.summaries()
        assert summaries.rng_origin("rngs.fresh") == "sanctioned"
        assert summaries.rng_origin("rngs.wrapped") == "sanctioned"
        assert summaries.rng_origin("rngs.rogue") == "raw"
        assert summaries.rng_origin("rngs.rogue_wrapped") == "raw"

    def test_fanout_takes_branch_maximum_not_sum(self, tmp_path):
        project = project_of(tmp_path, {
            "fan": (
                "def use(rng):\n"
                "    return rng.uniform(0, 1)\n"
                "def dispatch(kind, rng):\n"
                "    if kind == 'a':\n"
                "        return use(rng)\n"
                "    return use(rng)\n"
                "def spray(rng):\n"
                "    a = use(rng)\n"
                "    b = use(rng)\n"
                "    return a + b\n"
                "def looped(rng):\n"
                "    for _ in range(3):\n"
                "        use(rng)\n"
                "def deep(rng):\n"
                "    return spray(rng)\n"
            ),
        })
        summaries = project.summaries()
        # Exclusive dispatch arms: the worst path hands off once.
        assert summaries.rng_weight("fan.dispatch", "rng") == 1
        # Sequential hand-offs accumulate.
        assert summaries.rng_weight("fan.spray", "rng") == 2
        # A loop body hands off on every iteration.
        assert summaries.rng_weight("fan.looped", "rng") >= 2
        # A wrapper inherits its callee's fanout, not a flat 1.
        assert summaries.rng_weight("fan.deep", "rng") == 2

    def test_returns_hook_through_helper(self, tmp_path):
        project = project_of(tmp_path, {
            "tel": (
                "def direct(metrics):\n"
                "    return metrics.counter_hook('tx')\n"
                "def indirect(metrics):\n"
                "    return direct(metrics)\n"
                "def plain(metrics):\n"
                "    return 7\n"
            ),
        })
        summaries = project.summaries()
        assert summaries.returns_hook("tel.direct")
        assert summaries.returns_hook("tel.indirect")
        assert not summaries.returns_hook("tel.plain")

    def test_global_writes_record_rebinds_and_mutations(self, tmp_path):
        project = project_of(tmp_path, {
            "glob": (
                "COUNT = 0\n"
                "MEMO = {}\n"
                "def rebind():\n"
                "    global COUNT\n"
                "    COUNT = 1\n"
                "def mutate(x):\n"
                "    MEMO[x] = x\n"
                "def local_only():\n"
                "    memo = {}\n"
                "    memo['x'] = 1\n"
                "    return memo\n"
            ),
        })
        summaries = project.summaries()
        rebind = summaries.get("glob.rebind")
        assert [(w.name, w.kind) for w in rebind.global_writes] == [
            ("COUNT", "rebind")
        ]
        mutate = summaries.get("glob.mutate")
        assert [(w.name, w.kind) for w in mutate.global_writes] == [
            ("MEMO", "mutate")
        ]
        assert summaries.get("glob.local_only").global_writes == ()

    def test_return_ref_infers_unit_through_chain(self, tmp_path):
        project = project_of(tmp_path, {
            "sizes": (
                "from repro.core.units import Bytes\n"
                "def base():\n"
                "    return Bytes(1500.0)\n"
                "def wrapped():\n"
                "    return base()\n"
            ),
        })
        summaries = project.summaries()
        ref = summaries.return_ref("sizes.wrapped")
        assert ref is not None and ref.kind == "num"
        assert ref.dim is not None and ref.dim.render() == "B"
