"""CLI behavior: output formats, exit codes, reports, rule selection."""

import json
import pathlib
import re

import pytest

from repro.lint import REPORT_SCHEMA, build_report, main
from repro.lint.violations import Violation

FIXTURES = pathlib.Path(__file__).parent / "fixtures"

LOCATION_RE = re.compile(r"^(?P<path>.+?):(?P<line>\d+):(?P<col>\d+): "
                         r"(?P<code>RL\d{3}) (?P<message>.+)$")


@pytest.fixture()
def clean_file(tmp_path):
    path = tmp_path / "sim" / "clean.py"
    path.parent.mkdir()
    path.write_text("VALUE = 1\n")
    return path


class TestTextOutput:
    def test_file_line_col_format(self, capsys):
        exit_code = main([str(FIXTURES / "sim" / "bad_random.py")])
        out = capsys.readouterr().out
        lines = out.strip().splitlines()
        assert lines  # violations were printed
        for line in lines:
            assert LOCATION_RE.match(line), line

    def test_output_sorted_by_location(self, capsys):
        main([str(FIXTURES)])
        lines = capsys.readouterr().out.strip().splitlines()
        keys = []
        for line in lines:
            match = LOCATION_RE.match(line)
            keys.append((match["path"], int(match["line"]),
                         int(match["col"]), match["code"]))
        assert keys == sorted(keys)


class TestExitCodes:
    def test_clean_tree_exits_zero(self, clean_file, capsys):
        assert main([str(clean_file)]) == 0
        assert capsys.readouterr().out == ""

    def test_violations_exit_one(self, capsys):
        assert main([str(FIXTURES / "sim" / "bad_random.py")]) == 1

    def test_unknown_rule_exits_two(self, capsys):
        assert main(["--rules", "RL999", str(FIXTURES)]) == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nowhere")]) == 2

    def test_syntax_error_reported_as_rl000(self, tmp_path, capsys):
        broken = tmp_path / "sim" / "broken.py"
        broken.parent.mkdir()
        broken.write_text("def half(:\n")
        assert main([str(broken)]) == 1
        assert "RL000" in capsys.readouterr().out


class TestRuleSelection:
    def test_rules_filter(self, capsys):
        assert main(["--rules", "RL004", str(FIXTURES)]) == 1
        out = capsys.readouterr().out
        assert "RL004" in out
        assert "RL001" not in out
        assert "RL002" not in out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RL000", "RL001", "RL002", "RL003", "RL004"):
            assert code in out


class TestJsonReport:
    def test_schema_and_counts(self, capsys):
        main(["--format", "json", str(FIXTURES)])
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == REPORT_SCHEMA
        assert report["total"] == len(report["violations"])
        assert report["total"] > 0
        for code in ("RL001", "RL002", "RL003", "RL004"):
            assert report["counts"][code] > 0, code
        assert sum(report["counts"].values()) == report["total"]
        first = report["violations"][0]
        assert set(first) == {"path", "line", "col", "code", "message"}

    def test_out_file_stable_and_sorted(self, tmp_path, capsys):
        target = tmp_path / "lint.json"
        main(["--format", "json", "--out", str(target), str(FIXTURES)])
        text = target.read_text()
        assert text.endswith("\n")
        report = json.loads(text)
        # export_lint_report conventions: stable key order, so a second
        # run over the same tree is byte-identical.
        target2 = tmp_path / "lint2.json"
        main(["--format", "json", "--out", str(target2), str(FIXTURES)])
        assert target2.read_text() == text
        locations = [(v["path"], v["line"], v["col"])
                     for v in report["violations"]]
        assert locations == sorted(locations)

    def test_build_report_counts(self):
        violations = [
            Violation("b.py", 2, 0, "RL001", "x"),
            Violation("a.py", 1, 0, "RL003", "y"),
            Violation("a.py", 9, 4, "RL001", "z"),
        ]
        report = build_report(violations, files_checked=2)
        assert report["files_checked"] == 2
        assert report["counts"] == {"RL001": 2, "RL003": 1}
        assert [v["path"] for v in report["violations"]] == [
            "a.py", "a.py", "b.py"
        ]
