"""CLI behavior: output formats, exit codes, reports, rule selection."""

import json
import pathlib
import re
import subprocess

import pytest

from repro.lint import REPORT_SCHEMA, build_report, main
from repro.lint.violations import Violation

FIXTURES = pathlib.Path(__file__).parent / "fixtures"

LOCATION_RE = re.compile(r"^(?P<path>.+?):(?P<line>\d+):(?P<col>\d+): "
                         r"(?P<code>RL\d{3}) (?P<message>.+)$")


@pytest.fixture()
def clean_file(tmp_path):
    path = tmp_path / "sim" / "clean.py"
    path.parent.mkdir()
    path.write_text("VALUE = 1\n")
    return path


class TestTextOutput:
    def test_file_line_col_format(self, capsys):
        exit_code = main([str(FIXTURES / "sim" / "bad_random.py")])
        out = capsys.readouterr().out
        lines = out.strip().splitlines()
        assert lines  # violations were printed
        for line in lines:
            assert LOCATION_RE.match(line), line

    def test_output_sorted_by_location(self, capsys):
        main([str(FIXTURES)])
        lines = capsys.readouterr().out.strip().splitlines()
        keys = []
        for line in lines:
            match = LOCATION_RE.match(line)
            keys.append((match["path"], int(match["line"]),
                         int(match["col"]), match["code"]))
        assert keys == sorted(keys)


class TestExitCodes:
    def test_clean_tree_exits_zero(self, clean_file, capsys):
        assert main([str(clean_file)]) == 0
        assert capsys.readouterr().out == ""

    def test_violations_exit_one(self, capsys):
        assert main([str(FIXTURES / "sim" / "bad_random.py")]) == 1

    def test_unknown_rule_exits_two(self, capsys):
        assert main(["--rules", "RL999", str(FIXTURES)]) == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nowhere")]) == 2

    def test_syntax_error_reported_as_rl000(self, tmp_path, capsys):
        broken = tmp_path / "sim" / "broken.py"
        broken.parent.mkdir()
        broken.write_text("def half(:\n")
        assert main([str(broken)]) == 1
        assert "RL000" in capsys.readouterr().out

    def test_no_files_matched_exits_three(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main([str(empty)]) == 3
        assert "no Python files" in capsys.readouterr().err


class TestRuleSelection:
    def test_rules_filter(self, capsys):
        assert main(["--rules", "RL004", str(FIXTURES)]) == 1
        out = capsys.readouterr().out
        assert "RL004" in out
        assert "RL001" not in out
        assert "RL002" not in out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RL000", "RL001", "RL002", "RL003", "RL004",
                     "RL005", "RL006", "RL007", "RL008"):
            assert code in out


class TestJsonReport:
    def test_schema_and_counts(self, capsys):
        main(["--format", "json", str(FIXTURES)])
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == REPORT_SCHEMA
        assert report["total"] == len(report["violations"])
        assert report["total"] > 0
        for code in ("RL001", "RL002", "RL003", "RL004"):
            assert report["counts"][code] > 0, code
        assert sum(report["counts"].values()) == report["total"]
        first = report["violations"][0]
        assert set(first) == {"path", "line", "col", "code", "message"}

    def test_out_file_stable_and_sorted(self, tmp_path, capsys):
        target = tmp_path / "lint.json"
        main(["--format", "json", "--out", str(target), str(FIXTURES)])
        text = target.read_text()
        assert text.endswith("\n")
        report = json.loads(text)
        # export_lint_report conventions: stable key order, so a second
        # run over the same tree is byte-identical.
        target2 = tmp_path / "lint2.json"
        main(["--format", "json", "--out", str(target2), str(FIXTURES)])
        assert target2.read_text() == text
        locations = [(v["path"], v["line"], v["col"])
                     for v in report["violations"]]
        assert locations == sorted(locations)

    def test_build_report_counts(self):
        violations = [
            Violation("b.py", 2, 0, "RL001", "x"),
            Violation("a.py", 1, 0, "RL003", "y"),
            Violation("a.py", 9, 4, "RL001", "z"),
        ]
        report = build_report(violations, files_checked=2)
        assert report["files_checked"] == 2
        assert report["counts"] == {"RL001": 2, "RL003": 1}
        assert [v["path"] for v in report["violations"]] == [
            "a.py", "a.py", "b.py"
        ]


class TestSarifReport:
    def test_sarif_shape(self, capsys):
        assert main(
            ["--format", "sarif", str(FIXTURES / "sim" / "bad_random.py")]
        ) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rule_ids = {rule["id"] for rule in driver["rules"]}
        assert {"RL001", "RL005", "RL006", "RL007", "RL008"} <= rule_ids
        assert run["results"]
        for result in run["results"]:
            assert result["ruleId"].startswith("RL")
            assert result["level"] == "error"
            region = result["locations"][0]["physicalLocation"]["region"]
            assert region["startLine"] >= 1
            assert region["startColumn"] >= 1  # SARIF columns are 1-based

    def test_sarif_out_file(self, tmp_path, clean_file, capsys):
        target = tmp_path / "lint.sarif"
        assert main(
            ["--format", "sarif", "--out", str(target), str(clean_file)]
        ) == 0
        log = json.loads(target.read_text())
        assert log["runs"][0]["results"] == []


class TestShowSuppressed:
    def test_stale_directive_fails(self, tmp_path, capsys):
        path = tmp_path / "sim" / "mixed.py"
        path.parent.mkdir()
        path.write_text(
            "import random  # repro-lint: disable=RL001\n"
            "VALUE = 1  # repro-lint: disable=RL004\n"
        )
        assert main(["--show-suppressed", str(path)]) == 1
        captured = capsys.readouterr()
        lines = captured.out.strip().splitlines()
        assert any("disable=RL001 used" in line for line in lines)
        assert any("disable=RL004 STALE" in line for line in lines)
        assert "1 stale" in captured.err

    def test_all_used_passes(self, tmp_path, capsys):
        path = tmp_path / "sim" / "used.py"
        path.parent.mkdir()
        path.write_text("import random  # repro-lint: disable=RL001\n")
        assert main(["--show-suppressed", str(path)]) == 0
        assert "0 stale" in capsys.readouterr().err


def _git(repo, *args):
    subprocess.run(
        ["git", "-c", "user.email=t@example.invalid", "-c", "user.name=t",
         *args],
        cwd=repo,
        check=True,
        capture_output=True,
    )


class TestChanged:
    @pytest.fixture()
    def git_repo(self, tmp_path):
        repo = tmp_path / "work"
        (repo / "sim").mkdir(parents=True)
        (repo / "sim" / "a.py").write_text("import random\n")
        (repo / "sim" / "b.py").write_text("import random\n")
        _git(repo, "init", "-q")
        _git(repo, "add", ".")
        _git(repo, "commit", "-q", "-m", "seed")
        return repo

    def test_reports_only_changed_files(self, git_repo, monkeypatch,
                                        capsys):
        monkeypatch.chdir(git_repo)
        (git_repo / "sim" / "a.py").write_text(
            "import random\nimport random\n"
        )
        assert main(["--changed", "sim"]) == 1
        out = capsys.readouterr().out
        assert "a.py" in out
        assert "b.py" not in out

    def test_clean_diff_exits_zero(self, git_repo, monkeypatch, capsys):
        monkeypatch.chdir(git_repo)
        assert main(["--changed", "sim"]) == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "no checked files changed" in captured.err

    def test_untracked_files_count_as_changed(self, git_repo,
                                              monkeypatch, capsys):
        monkeypatch.chdir(git_repo)
        (git_repo / "sim" / "fresh.py").write_text("import random\n")
        assert main(["--changed", "sim"]) == 1
        out = capsys.readouterr().out
        assert "fresh.py" in out
        assert "a.py" not in out
