"""Interprocedural rules RL009-RL012: exact findings on fixtures.

Same contract as ``test_flow_rules.py``: every finding is pinned to its
``(file, line, col)`` and the deliberately-correct code in the same
fixtures is asserted silent, so a rule that drifts in either direction
fails loudly.
"""

import pathlib

from repro.lint import lint_paths
from repro.lint.rules import (
    NumpyDisciplineRule,
    ProcessSafetyRule,
    SimTimeRule,
    ToleranceRule,
)

FLOW_FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "flow"


def locations(rule):
    violations, _ = lint_paths([str(FLOW_FIXTURES)], rules=[rule])
    assert all(v.code == rule.code for v in violations)
    return [
        (pathlib.Path(v.path).name, v.line, v.col) for v in violations
    ], violations


class TestToleranceRule:
    def test_exact_findings(self):
        found, violations = locations(ToleranceRule())
        assert found == [
            ("tol_bad.py", 6, 0),  # _EPS_LOCAL defined outside tolerances
            ("tol_bad.py", 10, 11),  # a == b on Seconds
            ("tol_bad.py", 14, 11),  # a != b on Seconds
        ]
        messages = [v.message for v in violations]
        assert "outside repro.core.tolerances" in messages[0]
        assert "exact '=='" in messages[1]
        assert "exact '!='" in messages[2]

    def test_sanctioned_comparisons_are_silent(self):
        # int == int (18), close() (22), ordering < (26), and the
        # non-tolerance constant WINDOW (29) must not fire.
        found, _ = locations(ToleranceRule())
        flagged = {line for name, line, _ in found if name == "tol_bad.py"}
        assert flagged.isdisjoint({18, 22, 26, 29})


class TestProcessSafetyRule:
    def test_exact_findings(self):
        found, violations = locations(ProcessSafetyRule())
        assert found == [
            ("proc_bad.py", 9, 4),  # _RESULTS write, reached via worker
            ("proc_bad.py", 22, 26),  # lambda submitted
            ("proc_bad.py", 27, 29),  # nested def submitted
        ]
        messages = [v.message for v in violations]
        assert "'_RESULTS' mutated in record()" in messages[0]
        assert "lambdas do not pickle" in messages[1]
        assert "nested function 'local'" in messages[2]

    def test_write_is_reported_through_the_call_graph(self):
        # The flagged write is in record(), which the submitted worker()
        # merely calls -- the finding requires the interprocedural walk.
        _, violations = locations(ProcessSafetyRule())
        assert violations[0].line == 9

    def test_pure_worker_is_silent(self):
        # pure_worker (16-17) and its submit site (29) must not fire.
        found, _ = locations(ProcessSafetyRule())
        flagged = {line for name, line, _ in found if name == "proc_bad.py"}
        assert flagged.isdisjoint({16, 17, 29})


class TestSimTimeRule:
    def test_exact_findings(self):
        found, violations = locations(SimTimeRule())
        assert found == [
            ("simtime_bad.py", 15, 8),  # chunk_size() returns Bytes
            ("simtime_bad.py", 16, 8),  # negative literal delay
            ("simtime_bad.py", 17, 8),  # unclamped start - now
            ("simtime_bad.py", 18, 8),  # schedule_at(now - 1.0)
        ]
        messages = [v.message for v in violations]
        assert "B quantity" in messages[0]
        assert "negative delay -0.25" in messages[1]
        assert "clamp with max(0.0, ...)" in messages[2]
        assert "schedules in the past" in messages[3]

    def test_dimension_is_inferred_through_the_callee(self):
        # chunk_size() has no return annotation: the B dimension comes
        # from the function summary, not a declared type.
        _, violations = locations(SimTimeRule())
        assert "chunk_size" not in violations[0].message  # flagged at site
        assert violations[0].line == 15

    def test_clamped_and_forward_schedules_are_silent(self):
        # max(0.0, ...) clamp (19-20), literal delay (21), now + x (22).
        found, _ = locations(SimTimeRule())
        flagged = {line for _, line, _ in found}
        assert flagged.isdisjoint({19, 20, 21, 22})


class TestNumpyDisciplineRule:
    def test_exact_findings(self):
        found, violations = locations(NumpyDisciplineRule())
        assert found == [
            ("npy_bad.py", 7, 10),  # arange without dtype
            ("npy_bad.py", 9, 10),  # np.nan pad
            ("npy_bad.py", 11, 4),  # int accumulator += float
            ("npy_bad.py", 13, 10),  # 1-D mask on 2-D array
            ("npy_bad.py", 14, 30),  # np.float32
        ]
        messages = [v.message for v in violations]
        assert "np.arange() without an explicit dtype" in messages[0]
        assert "np.nan" in messages[1]
        assert "'counts'" in messages[2]
        assert "(1-D) indexes 'grid' (2-D)" in messages[3]
        assert "np.float32" in messages[4]

    def test_pinned_dtypes_and_matched_masks_are_silent(self):
        # clean(): pinned arange (19), float accumulator (23), inf pad
        # (24), rank-matched mask (25).
        found, _ = locations(NumpyDisciplineRule())
        flagged = {line for name, line, _ in found if name == "npy_bad.py"}
        assert flagged.isdisjoint({19, 23, 24, 25})


class TestShowSuppressedCoversNewRules:
    def test_inline_disable_silences_and_audits(self, tmp_path):
        path = tmp_path / "probe.py"
        path.write_text(
            "import numpy as np\n"
            "bad = np.zeros(4)  # repro-lint: disable=RL012\n"
        )
        violations, _ = lint_paths(
            [str(path)], rules=[NumpyDisciplineRule()]
        )
        assert violations == []
