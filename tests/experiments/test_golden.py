"""Golden-output regression tests: the paper artifacts may never drift.

Two layers of protection:

1. Every ``figNN``/``tableN`` experiment is re-rendered and compared
   byte-for-byte against its snapshot in ``tests/golden/``. Cheap
   experiments run in every test session; the multi-minute ones carry
   ``@pytest.mark.slow`` (enable with ``--run-slow``).
2. The committed ``results/*.txt`` artifacts must equal the golden
   snapshots file-for-file — this costs nothing and covers *all*
   experiments, including the ablations, in every session.

After an intentional output change, regenerate with::

    PYTHONPATH=src python -m pytest tests/experiments/test_golden.py \
        --update-golden
    repro-experiments all --out results/ --no-cache
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import EXPERIMENTS, runner

GOLDEN_DIR = pathlib.Path(__file__).resolve().parents[1] / "golden"
RESULTS_DIR = GOLDEN_DIR.parents[1] / "results"

#: Paper artifacts cheap enough to re-render on every test run.
FAST = ("fig01", "fig02", "fig03", "fig04", "fig05", "fig07", "fig08",
        "fig09", "fig10", "fig14")
#: Paper artifacts that take seconds to minutes (table1/2 ~2.5 min each).
SLOW = ("fig06", "fig11", "fig12", "fig13", "table1", "table2",
        "multiflow-fairness")

PAPER_ARTIFACTS = [
    *(pytest.param(name, id=name) for name in FAST),
    *(pytest.param(name, id=name, marks=pytest.mark.slow)
      for name in SLOW),
]


def test_every_paper_artifact_is_parametrized():
    covered = set(FAST) | set(SLOW)
    expected = {name for name in EXPERIMENTS
                if name.startswith(("fig", "table", "multiflow"))}
    assert covered == expected


@pytest.mark.parametrize("name", PAPER_ARTIFACTS)
def test_rendered_output_matches_golden(name, request):
    text = runner.render_experiment(name)
    golden = GOLDEN_DIR / f"{name}.txt"
    if request.config.getoption("--update-golden"):
        golden.write_text(text)
        return
    assert golden.is_file(), (
        f"missing snapshot {golden}; create it with --update-golden")
    assert text == golden.read_text(), (
        f"{name} output drifted from tests/golden/{name}.txt — if the "
        "change is intentional, rerun with --update-golden and "
        "regenerate results/")


@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_committed_results_equal_golden(name):
    """results/*.txt must stay in lockstep with the golden snapshots."""
    golden = GOLDEN_DIR / f"{name}.txt"
    committed = RESULTS_DIR / f"{name}.txt"
    assert golden.is_file(), f"no golden snapshot for {name}"
    assert committed.is_file(), f"no committed artifact for {name}"
    assert committed.read_text() == golden.read_text(), (
        f"results/{name}.txt no longer matches tests/golden/{name}.txt")
