"""Tests for the experiment registry, CLI runner and workload builder."""

import importlib

from repro.experiments import EXPERIMENTS, runner
from repro.experiments.common import (
    PaperWorkload,
    WorkloadConfig,
    pooled_metrics,
)


class TestRegistry:
    def test_every_entry_importable_with_run(self):
        for name, module_path in EXPERIMENTS.items():
            module = importlib.import_module(module_path)
            assert hasattr(module, "run"), name
            assert hasattr(module, "main"), name

    def test_expected_experiments_present(self):
        for name in ("fig01", "fig11", "fig12", "fig13", "table1",
                     "table2"):
            assert name in EXPERIMENTS


class TestRunnerCli:
    def test_list(self, capsys):
        assert runner.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig11" in out

    def test_unknown_experiment(self, capsys):
        assert runner.main(["nope"]) == 2

    def test_runs_an_analytic_experiment(self, capsys):
        assert runner.main(["fig04"]) == 0
        assert "Figure 4" in capsys.readouterr().out

    def test_out_file(self, tmp_path, capsys):
        target = tmp_path / "fig04.txt"
        assert runner.main(["fig04", "--out", str(target)]) == 0
        assert "Figure 4" in target.read_text()


class TestWorkloadConfig:
    def test_defaults(self):
        cfg = WorkloadConfig()
        assert cfg.cbr_fraction == 0.0
        assert cfg.qa_config().k_max == cfg.k_max

    def test_t2_variant(self):
        cfg = WorkloadConfig.t2(k_max=4)
        assert cfg.cbr_fraction == 0.5
        assert cfg.duration == 90.0
        assert cfg.k_max == 4


class TestPaperWorkload:
    def test_overrides_via_kwargs(self):
        w = PaperWorkload(k_max=5, duration=5.0)
        assert w.config.k_max == 5

    def test_config_plus_overrides(self):
        w = PaperWorkload(WorkloadConfig(k_max=3), duration=5.0)
        assert w.config.k_max == 3
        assert w.config.duration == 5.0

    def test_flow_counts(self):
        w = PaperWorkload(duration=1.0)
        assert len(w.background_rap) == 9
        assert len(w.background_tcp) == 10
        assert w.cbr is None

    def test_cbr_present_for_t2(self):
        w = PaperWorkload(WorkloadConfig.t2(duration=1.0))
        assert w.cbr is not None

    def test_same_seed_reproduces(self):
        a = PaperWorkload(seed=7, duration=8.0).run()
        b = PaperWorkload(seed=7, duration=8.0).run()
        assert a.summary() == b.summary()

    def test_different_seeds_differ(self):
        a = PaperWorkload(seed=1, duration=10.0).run()
        b = PaperWorkload(seed=2, duration=10.0).run()
        assert (a.tracer.get("rate").values
                != b.tracer.get("rate").values)

    def test_network_summary(self):
        w = PaperWorkload(duration=5.0)
        w.run()
        summary = w.network_summary()
        assert 0 < summary["bottleneck_utilization"] <= 1.05

    def test_pooled_metrics(self):
        pooled = pooled_metrics(
            (1, 2),
            lambda seed: PaperWorkload(seed=seed, duration=8.0))
        assert pooled.adds or pooled.drops or True  # pools run fine
