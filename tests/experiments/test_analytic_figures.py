"""Shape tests for the analytic figures (3, 4, 7, 8, 9, 10, 14)."""

import math

import pytest

from repro.core import formulas
from repro.experiments import (
    fig03_phase_geometry,
    fig04_optimal_alloc,
    fig07_double_backoff,
    fig08_buffer_states,
    fig09_state_order,
    fig10_filling_steps,
    fig14_scenario2_geometry,
)


class TestFig03:
    def test_areas_match_formulas(self):
        r = fig03_phase_geometry.run()
        assert r.draining_deficit_area == pytest.approx(
            formulas.one_backoff_requirement(
                r.rate, r.consumption, r.slope))

    def test_durations_positive(self):
        r = fig03_phase_geometry.run()
        assert r.filling_duration > 0
        assert r.draining_duration > 0

    def test_renders(self):
        assert "triangle" in fig03_phase_geometry.run().render()


class TestFig04:
    def test_shares_sum_to_triangle(self):
        r = fig04_optimal_alloc.run()
        assert math.fsum(r.shares) == pytest.approx(r.total)

    def test_base_layer_largest(self):
        r = fig04_optimal_alloc.run()
        nonzero = [s for s in r.shares if s > 0]
        assert nonzero == sorted(nonzero, reverse=True)

    def test_nb_counts_nonzero_shares(self):
        r = fig04_optimal_alloc.run()
        assert r.buffering_layers == sum(1 for s in r.shares if s > 0)

    def test_renders(self):
        assert "L0" in fig04_optimal_alloc.run().render()


class TestFig07:
    def test_extremes_match_closed_forms(self):
        r = fig07_double_backoff.run()
        s1 = formulas.scenario_total(r.rate, r.consumption, r.slope, 2,
                                     formulas.SCENARIO_ONE)
        s2 = formulas.scenario_total(r.rate, r.consumption, r.slope, 2,
                                     formulas.SCENARIO_TWO)
        assert r.rows[0][1] == pytest.approx(s1, rel=0.02)
        assert r.rows[-1][1] == pytest.approx(s2, rel=0.02)

    def test_intermediate_scenarios_bracketed(self):
        r = fig07_double_backoff.run()
        totals = [total for _, total in r.rows]
        lo, hi = min(totals[0], totals[-1]), max(totals[0], totals[-1])
        for total in totals[1:-1]:
            assert lo - 1 <= total <= hi + 1

    def test_renders(self):
        assert "scenario" in fig07_double_backoff.run().render()


class TestFig08:
    def test_row_count(self):
        r = fig08_buffer_states.run(k_max=5)
        assert len(r.rows()) == 10  # 5 k values x 2 scenarios

    def test_scenario1_uses_more_layers_at_high_k(self):
        r = fig08_buffer_states.run(k_max=5)
        rows = {(row[0], row[1]): row[3:] for row in r.rows()}
        s1_layers = sum(1 for v in rows[("S1", 5)] if v > 0)
        s2_layers = sum(1 for v in rows[("S2", 5)] if v > 0)
        assert s1_layers >= s2_layers

    def test_renders(self):
        assert "S1" in fig08_buffer_states.run().render()


class TestFig09:
    def test_totals_ascending(self):
        r = fig09_state_order.run()
        totals = [row[1] for row in r.rows()]
        assert totals == sorted(totals)

    def test_some_raw_dips_exist(self):
        """The motivation for Figure 10: the raw ordering would require
        draining some layer at some step."""
        r = fig09_state_order.run()
        assert any(row[-1] for row in r.rows())


class TestFig10:
    def test_effective_totals_ascending(self):
        r = fig10_filling_steps.run()
        totals = [row[2] for row in r.rows()]
        assert totals == sorted(totals)

    def test_per_layer_monotone(self):
        r = fig10_filling_steps.run()
        previous = None
        for row in r.rows():
            shares = row[3:-1]
            if previous is not None:
                for a, b in zip(previous, shares):
                    assert b >= a
            previous = shares


class TestFig14:
    def test_decomposition_matches_closed_form(self):
        r = fig14_scenario2_geometry.run()
        text = r.render()
        assert "closed_form_total" in text

    def test_component_sum(self):
        r = fig14_scenario2_geometry.run(k=4)
        k1 = formulas.k1_backoffs(r.rate, r.consumption)
        first = formulas.triangle_area(
            formulas.deficit_after_backoffs(r.rate, r.consumption, k1),
            r.slope)
        seq = formulas.triangle_area(r.consumption / 2, r.slope)
        total = formulas.scenario_total(r.rate, r.consumption, r.slope,
                                        4, formulas.SCENARIO_TWO)
        assert first + (4 - k1) * seq == pytest.approx(total)
