"""A minimal experiment module exercising the module-level render path
of :func:`repro.experiments.runner.render_result` (the table2 idiom)."""


def run():
    return 7


def render(result):
    return f"module render: {result}"


def main():
    print(render(run()))
