"""Tests for the orchestration layer: scheduler, cache, manifest, CLI.

The load-bearing guarantees:

- parallel (process-pool) and serial execution produce byte-identical
  rendered output and output digests (determinism under parallelism);
- the content-addressed cache hits on unchanged (config, source) and
  misses when either changes;
- the run manifest records wall time, hit/miss, seed and output digest;
- ``render_result`` normalizes every experiment return convention and
  fails loudly (TypeError, naming the module) on an unrenderable one.
"""

from __future__ import annotations

import json
import types

import pytest

from repro.experiments import EXPERIMENTS, cache as cache_mod, runner
from repro.experiments.cache import ResultCache
from repro.experiments.runner import (
    build_manifest,
    effective_seed,
    render_result,
    run_experiments,
    seed_overrides,
)

CHEAP = ["fig01", "fig03", "fig04"]


class TestDeterminism:
    def test_serial_and_parallel_runs_are_bit_identical(self):
        serial = run_experiments(CHEAP, jobs=1, cache=None)
        pooled = run_experiments(CHEAP, jobs=2, cache=None)
        assert [r.name for r in serial] == [r.name for r in pooled]
        for a, b in zip(serial, pooled):
            assert a.text == b.text, a.name
            assert a.output_sha256 == b.output_sha256, a.name

    def test_repeated_serial_runs_are_bit_identical(self):
        a = run_experiments(["fig01"], cache=None)[0]
        b = run_experiments(["fig01"], cache=None)[0]
        assert a.text == b.text
        assert a.output_sha256 == b.output_sha256


class TestResultCache:
    def test_second_run_hits_with_identical_output(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = run_experiments(CHEAP, cache=cache)
        warm = run_experiments(CHEAP, cache=cache)
        assert all(not r.cache_hit for r in cold)
        assert all(r.cache_hit for r in warm)
        for a, b in zip(cold, warm):
            assert a.text == b.text
            assert a.output_sha256 == b.output_sha256
        assert cache.hits == len(CHEAP)
        assert cache.misses == len(CHEAP)

    def test_warm_hit_is_much_faster_than_cold_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = run_experiments(["fig01"], cache=cache)[0]
        warm = run_experiments(["fig01"], cache=cache)[0]
        assert warm.seconds < cold.seconds

    def test_refresh_reruns_but_stores(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_experiments(["fig03"], cache=cache)
        again = run_experiments(["fig03"], cache=cache, refresh=True)[0]
        assert not again.cache_hit
        assert cache.get(again.cache_key) == again.text

    def test_key_depends_on_config(self):
        cache = ResultCache("unused")
        a = cache.key("fig11", EXPERIMENTS["fig11"], {})
        b = cache.key("fig11", EXPERIMENTS["fig11"], {"seed": 2})
        assert a != b

    def test_key_depends_on_source(self, tmp_path, monkeypatch):
        stub = tmp_path / "stub_cache_mod.py"
        stub.write_text("def run():\n    return 'v1'\n")
        monkeypatch.syspath_prepend(str(tmp_path))
        cache = ResultCache(tmp_path / "cache")
        first = cache.key("stub", "stub_cache_mod", {})
        stub.write_text("def run():\n    return 'v2'\n")
        cache_mod.clear_memos()
        try:
            assert cache.key("stub", "stub_cache_mod", {}) != first
        finally:
            cache_mod.clear_memos()

    def test_closure_tracks_transitive_repro_imports(self):
        closure = cache_mod.module_closure(EXPERIMENTS["fig11"])
        assert EXPERIMENTS["fig11"] in closure
        assert "repro.experiments.common" in closure
        assert "repro.sim.engine" in closure  # via common -> sim
        # A figure that only uses the analytic core must not depend on
        # the transport or server stack: editing RAP keeps fig04 cached.
        analytic = cache_mod.module_closure(EXPERIMENTS["fig04"])
        assert "repro.transport.rap" not in analytic
        assert "repro.server.session" not in analytic

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put("k1", "text")
        assert cache.clear() == 1
        assert cache.get("k1") is None


class TestSeedPlumbing:
    def test_explicit_seed_param_receives_override(self):
        module = __import__("repro.experiments.ablation_add_rules",
                            fromlist=["run"])
        assert seed_overrides(module, 9) == {"seed": 9}

    def test_var_keyword_run_receives_override(self):
        module = __import__("repro.experiments.fig11_trace_kmax2",
                            fromlist=["run"])
        assert seed_overrides(module, 9) == {"seed": 9}

    def test_pooled_seeds_run_is_left_alone(self):
        module = __import__("repro.experiments.table1_efficiency",
                            fromlist=["run"])
        assert seed_overrides(module, 9) == {}
        assert effective_seed(module, {}) == [1, 2, 3, 4, 5]

    def test_analytic_run_is_left_alone(self):
        module = __import__("repro.experiments.fig04_optimal_alloc",
                            fromlist=["run"])
        assert seed_overrides(module, 9) == {}
        assert effective_seed(module, {}) is None

    def test_seed_override_changes_stochastic_output(self, tmp_path):
        base = run_experiments(["fig11"], cache=None)[0]
        other = run_experiments(["fig11"], seed=3, cache=None)[0]
        assert base.seed is None and other.seed == 3
        assert base.text != other.text


class TestRenderProtocol:
    def _module(self, name="stub_module", **attrs):
        module = types.ModuleType(name)
        for key, value in attrs.items():
            setattr(module, key, value)
        return module

    def test_result_render_method_wins(self):
        class Result:
            def render(self):
                return "via method"
        module = self._module(render=lambda result: "via module")
        assert render_result(module, Result()) == "via method"

    def test_module_level_render_fallback(self):
        module = self._module(render=lambda result: f"table: {result}")
        assert render_result(module, {"x": 1}) == "table: {'x': 1}"

    def test_plain_string_passthrough(self):
        assert render_result(self._module(), "already text") == \
            "already text"

    def test_unrenderable_result_raises_typeerror(self):
        module = self._module(name="repro.experiments.broken")
        with pytest.raises(TypeError, match="broken.*dict"):
            render_result(module, {"not": "renderable"})

    def test_render_experiment_full_path(self, monkeypatch):
        monkeypatch.setitem(
            EXPERIMENTS, "stub",
            "tests.experiments.render_stub")
        assert runner.render_experiment("stub") == "module render: 7"


class TestManifest:
    def test_fields(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        records = run_experiments(["fig03", "fig04"], cache=cache)
        manifest = build_manifest(records, jobs=2, cache=cache)
        assert manifest["schema"] == runner.MANIFEST_SCHEMA
        assert manifest["jobs"] == 2
        assert manifest["cache_dir"] == str(cache.root)
        assert manifest["cache_misses"] == 2
        entries = manifest["experiments"]
        assert [e["name"] for e in entries] == ["fig03", "fig04"]
        for entry in entries:
            assert entry["seconds"] >= 0
            assert entry["cache_hit"] is False
            assert len(entry["output_sha256"]) == 64
            assert entry["cache_key"]

    def test_hits_recorded_on_second_run(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_experiments(["fig03"], cache=cache)
        records = run_experiments(["fig03"], cache=cache)
        manifest = build_manifest(records, jobs=1, cache=cache)
        assert manifest["cache_hits"] == 1
        assert manifest["cache_misses"] == 0


class TestCli:
    def test_multi_name_out_dir_writes_files_and_manifest(
            self, tmp_path, capsys):
        out = tmp_path / "out"
        assert runner.main([
            "fig03", "fig04", "--out", str(out),
            "--cache-dir", str(tmp_path / "cache")]) == 0
        assert (out / "fig03.txt").is_file()
        assert (out / "fig04.txt").is_file()
        manifest = json.loads((out / "manifest.json").read_text())
        assert {e["name"] for e in manifest["experiments"]} == \
            {"fig03", "fig04"}

    def test_second_cli_run_is_all_hits(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        argv = ["fig03", "fig04", "--cache-dir", str(cache_dir)]
        assert runner.main(argv) == 0
        first = capsys.readouterr().out
        assert runner.main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        manifest = json.loads((cache_dir / "manifest.json").read_text())
        assert manifest["cache_hits"] == 2

    def test_no_cache_writes_nothing(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert runner.main(["fig04", "--no-cache",
                            "--cache-dir", str(cache_dir)]) == 0
        assert not cache_dir.exists()

    def test_bench_emits_manifest_json(self, tmp_path, capsys):
        target = tmp_path / "timings.json"
        assert runner.main([
            "bench", "fig03", "fig04", "--json", str(target),
            "--cache-dir", str(tmp_path / "cache")]) == 0
        manifest = json.loads(target.read_text())
        assert manifest["cache_misses"] == 2
        assert all(not e["cache_hit"] for e in manifest["experiments"])

    def test_bench_never_reads_but_still_warms(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        argv_bench = ["bench", "fig03", "--json",
                      str(tmp_path / "t.json"),
                      "--cache-dir", str(cache_dir)]
        assert runner.main(argv_bench) == 0
        assert runner.main(["fig03", "--cache-dir",
                            str(cache_dir)]) == 0
        capsys.readouterr()
        manifest = json.loads((cache_dir / "manifest.json").read_text())
        assert manifest["cache_hits"] == 1

    def test_explicit_manifest_path(self, tmp_path, capsys):
        target = tmp_path / "m.json"
        assert runner.main(["fig04", "--no-cache",
                            "--manifest", str(target)]) == 0
        assert json.loads(target.read_text())["cache_misses"] == 1
