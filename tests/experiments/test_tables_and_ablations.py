"""Shape tests for Tables 1/2 and the ablation experiments.

Shortened runs and few seeds: the full-length numbers are recorded in
EXPERIMENTS.md. What is asserted here is the *direction* of every
comparison the paper (or our ablation design) makes.
"""

import pytest

from repro.experiments import (
    ablation_add_rules,
    ablation_allocators,
    ablation_feedback,
    ablation_static,
    table1_efficiency,
    table2_drop_causes,
)


@pytest.fixture(scope="module")
def tables():
    """One shared small collection for both tables."""
    return table1_efficiency.collect(
        k_values=(2, 4), seeds=(1, 2), duration=30.0)


class TestTables:
    def test_cells_present(self, tables):
        assert ("T1", 2) in tables.metrics
        assert ("T2", 4) in tables.metrics

    def test_efficiency_is_high(self, tables):
        for key, metrics in tables.metrics.items():
            eff = metrics.buffering_efficiency()
            if eff is not None:
                assert eff > 0.75, key

    def test_poor_distribution_is_low(self, tables):
        for key, metrics in tables.metrics.items():
            poor = metrics.poor_distribution_percent()
            if poor is not None:
                assert poor <= 25.0, key

    def test_smoothing_reduces_drops(self, tables):
        t1_k2 = len(tables.metrics[("T1", 2)].drops)
        t1_k4 = len(tables.metrics[("T1", 4)].drops)
        assert t1_k4 <= t1_k2

    def test_t2_has_more_drops_than_t1(self, tables):
        # The CBR burst forces extra adaptation.
        assert (len(tables.metrics[("T2", 2)].drops)
                >= len(tables.metrics[("T1", 2)].drops))

    def test_render_both_tables(self, tables):
        assert "Table 1" in tables.render()
        assert "Table 2" in table2_drop_causes.render(tables)


class TestAllocatorAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation_allocators.run(seeds=(1,), duration=30.0)

    def test_all_three_run(self, result):
        assert set(result.metrics) == {"optimal", "equal_share",
                                       "base_first"}

    def test_optimal_is_most_efficient(self, result):
        eff = {name: m.buffering_efficiency()
               for name, m in result.metrics.items()}
        if eff["optimal"] is not None and eff["equal_share"] is not None:
            assert eff["optimal"] >= eff["equal_share"] - 0.1

    def test_renders(self, result):
        assert "allocator" in result.render()


class TestAddRuleAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation_add_rules.run(duration=60.0)

    def test_all_rules_run(self, result):
        assert {r.rule for r in result.rows} == {
            "buffer_only", "buffer_and_rate", "average_bandwidth"}

    def test_buffer_rule_delivers_the_extra_layer_more(self, result):
        """The paper's 2.9-layer argument: the buffer-based rule spends
        (much) more time at >= 3 layers than the average-bandwidth
        rule."""
        by_rule = {r.rule: r for r in result.rows}
        assert (by_rule["buffer_only"].time_at_3_plus
                >= by_rule["average_bandwidth"].time_at_3_plus)

    def test_renders(self, result):
        assert "add rule" in result.render()


class TestStaticAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation_static.run(seeds=(1,), duration=30.0)

    def test_rows(self, result):
        schemes = [r.scheme for r in result.rows]
        assert "adaptive" in schemes
        assert any("fixed" in s for s in schemes)

    def test_adaptive_does_not_stall(self, result):
        adaptive = next(r for r in result.rows if r.scheme == "adaptive")
        assert adaptive.stalls == 0

    def test_high_fixed_quality_suffers(self, result):
        fixed4 = next(r for r in result.rows
                      if r.scheme == "fixed 4 layers")
        adaptive = next(r for r in result.rows if r.scheme == "adaptive")
        assert (fixed4.stalls > adaptive.stalls
                or fixed4.gap_bytes > adaptive.gap_bytes)

    def test_renders(self, result):
        assert "adaptive" in result.render()


class TestFeedbackAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation_feedback.run(seeds=(1,), duration=30.0)

    def test_all_modes_run(self, result):
        assert {r.mode for r in result.rows} == {"send", "ack", "oracle"}

    def test_send_mode_protects_playback_best(self, result):
        """'send' (loss-aware) must not stall more than 'oracle'
        (loss-blind) -- ignoring losses overestimates the receiver's
        buffers and breaks stall protection."""
        by_mode = {r.mode: r for r in result.rows}
        assert by_mode["send"].stalls <= by_mode["oracle"].stalls
        assert by_mode["send"].stall_time < 1.0

    def test_renders(self, result):
        assert "feedback" in result.render()
