"""Shape tests for the section-7 extension ablations."""

import pytest

from repro.experiments import ablation_nonlinear, ablation_transport


class TestNonlinearAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation_nonlinear.run()

    def test_totals_identical_across_spacings(self, result):
        rows = result.rows()
        by_key = {(r[0], r[1]): r[2] for r in rows}
        for k in (1, 2):
            assert by_key[("linear", k)] == by_key[("geometric", k)]

    def test_fat_base_needs_fewer_buffering_layers(self, result):
        rows = result.rows()
        by_key = {(r[0], r[1]): r[3] for r in rows}
        for k in (1, 2):
            assert by_key[("geometric", k)] <= by_key[("linear", k)]

    def test_geometric_concentrates_in_base(self, result):
        rows = {(r[0], r[1]): r[4:] for r in result.rows()}
        lin = rows[("linear", 2)]
        geo = rows[("geometric", 2)]
        assert geo[0] > lin[0]

    def test_drop_rule_cuts_deeper_on_thin_ladders(self, result):
        rows = result.drop_rule_rows()
        kept = {}
        for spacing, post_rate, layers in rows:
            kept.setdefault(spacing, []).append(layers)
        for lin_kept, geo_kept in zip(kept["linear"], kept["geometric"]):
            assert geo_kept <= lin_kept

    def test_renders(self, result):
        assert "geometric" in result.render()


class TestTransportAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation_transport.run(seeds=(1,), duration=30.0)

    def test_both_transports_run(self, result):
        assert {r.transport for r in result.rows} == {"rap",
                                                      "window-aimd"}

    def test_adapter_streams_over_both(self, result):
        for row in result.rows:
            assert row.mean_rate > 5_000
            assert row.mean_layers >= 1.0
            assert row.adds > 0

    def test_rap_is_the_smoother_ride(self, result):
        """Rate-based pacing (RAP) was chosen by the paper for a reason:
        it should not stall more than the bursty window transport."""
        by = {r.transport: r for r in result.rows}
        assert by["rap"].stall_time <= by["window-aimd"].stall_time + 0.5

    def test_renders(self, result):
        assert "transport" in result.render()
