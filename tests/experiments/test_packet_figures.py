"""Shape tests for the packet-level experiments (Figures 1, 11, 12, 13).

These assert the *qualitative* claims of the paper's evaluation on
shortened runs; the full-length numbers live in EXPERIMENTS.md.
"""

import pytest

from repro.experiments import (
    fig01_rap_sawtooth,
    fig11_trace_kmax2,
    fig12_kmax_sweep,
    fig13_cbr_step,
)


@pytest.fixture(scope="module")
def fig01():
    return fig01_rap_sawtooth.run(duration=30.0)


@pytest.fixture(scope="module")
def fig11():
    return fig11_trace_kmax2.run(duration=25.0)


@pytest.fixture(scope="module")
def fig13():
    # The real T2 timing: 90 s, CBR on 30..60 s (a shortened run would
    # still be in its startup climb when the burst starts).
    return fig13_cbr_step.run()


class TestFig01:
    def test_sawtooth_hunts_around_link_rate(self, fig01):
        assert 0.5 * fig01.link_bandwidth < fig01.mean_rate \
            < 2.0 * fig01.link_bandwidth

    def test_regular_backoffs(self, fig01):
        assert fig01.backoffs >= 5

    def test_high_utilization(self, fig01):
        assert fig01.utilization > 0.7

    def test_rate_oscillates(self, fig01):
        values = fig01.rate.values
        assert max(values) > 1.3 * min(v for v in values if v > 0)

    def test_renders(self, fig01):
        assert "Figure 1" in fig01.render()


class TestFig11:
    def test_playback_never_stalls(self, fig11):
        assert fig11.session.playout.stall_count == 0

    def test_quality_tracks_bandwidth(self, fig11):
        t = fig11.session.tracer
        mean_layers = t.get("layers").window(5.0, 25.0).time_average()
        fair_layers = (t.get("rate").time_average()
                       / fig11.workload.config.layer_rate)
        assert mean_layers == pytest.approx(fair_layers, rel=0.5)

    def test_buffering_is_base_heavy(self, fig11):
        t = fig11.session.tracer
        means = [t.get(f"buffer_L{i}").mean() for i in range(4)]
        assert means[0] == max(means)

    def test_lowest_layers_absorb_rate_variation(self, fig11):
        """Figure 11's middle panels: the paper notes most bandwidth
        variation shows up in the lowest layers' share (they take the
        filling spikes), while upper layers hover near C."""
        t = fig11.session.tracer
        spread0 = (t.get("send_rate_L0").max()
                   - t.get("send_rate_L0").min())
        spread3 = (t.get("send_rate_L3").max()
                   - t.get("send_rate_L3").min())
        assert spread0 >= spread3

    def test_drain_happens_after_backoffs(self, fig11):
        t = fig11.session.tracer
        total_drain = sum(t.get(f"drain_rate_L{i}").mean()
                          for i in range(4))
        assert total_drain > 0

    def test_renders(self, fig11):
        text = fig11.render()
        assert "Figure 11" in text
        assert "buffered data, layer 0" in text


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self):
        return fig12_kmax_sweep.run(k_values=(1, 4), duration=25.0)

    def test_higher_kmax_fewer_quality_changes(self, result):
        by_k = {row.k_max: row for row in result.rows}
        assert (by_k[4].quality_changes <= by_k[1].quality_changes)

    def test_renders(self, result):
        assert "K_max" in result.render()


class TestFig13:
    def test_layers_shed_during_cbr_and_recover(self, fig13):
        phases = fig13.phase_means()
        assert (phases["mean_layers_during_cbr"]
                < phases["mean_layers_before_cbr"])
        assert (phases["mean_layers_after_cbr"]
                > phases["mean_layers_during_cbr"])

    def test_base_layer_never_jeopardized(self, fig13):
        assert fig13.session.playout.stall_count == 0

    def test_rate_collapses_under_cbr(self, fig13):
        rate = fig13.session.tracer.get("rate")
        before = rate.window(10.0, 30.0).time_average()
        during = rate.window(35.0, 60.0).time_average()
        assert during < before

    def test_renders(self, fig13):
        assert "Figure 13" in fig13.render()
