"""Shape tests for the fluid-model figures (2, 5, 6)."""

import pytest

from repro.experiments import (
    fig02_overview,
    fig05_fill_drain,
    fig06_smoothing_phases,
)


@pytest.fixture(scope="module")
def fig02():
    return fig02_overview.run()


@pytest.fixture(scope="module")
def fig05():
    return fig05_fill_drain.run()


@pytest.fixture(scope="module")
def fig06():
    return fig06_smoothing_phases.run()


class TestFig02:
    def test_both_layers_stream(self, fig02):
        t = fig02.tracer
        assert t.get("layers").final() == 2
        assert t.get("buffer_L0").max() > 0

    def test_base_buffered_more_than_enhancement(self, fig02):
        t = fig02.tracer
        assert t.get("buffer_L0").max() > t.get("buffer_L1").max()

    def test_backoffs_cause_draining(self, fig02):
        t = fig02.tracer
        total = t.get("total_buffer")
        for backoff in fig02.backoff_times:
            before = total.value_at(backoff - 0.05)
            after_min = min(total.window(backoff,
                                         backoff + 3.0).values)
            assert after_min < before

    def test_renders(self, fig02):
        assert "Figure 2" in fig02.render()


class TestFig05:
    def test_layers_join_sequentially(self, fig05):
        t = fig05.fluid.tracer
        layers = t.get("layers")
        assert layers.values[0] <= 2
        assert layers.max() == fig05.layers

    def test_base_heavy_distribution(self, fig05):
        t = fig05.fluid.tracer
        means = [t.get(f"buffer_L{i}").mean() for i in range(3)]
        assert means[0] >= means[1] >= means[2]

    def test_backoff_drains_buffers(self, fig05):
        t = fig05.fluid.tracer
        total = t.get("total_buffer")
        before = total.value_at(27.9)
        trough = min(total.window(28.0, 34.0).values)
        assert trough < before

    def test_renders(self, fig05):
        assert "Figure 5" in fig05.render()


class TestFig06:
    def test_buffering_exceeds_one_backoff_requirement(self, fig06):
        """The whole point of smoothing: before the second backoff the
        receiver holds more than one backoff's worth of protection."""
        text = fig06.render()
        t = fig06.fluid.tracer
        before = t.get("total_buffer").value_at(
            fig06.second_backoff - 0.1)
        assert before > 0
        assert "smoothing_factor_k_max" in text

    def test_two_filling_phases_visible(self, fig06):
        """Total buffering dips after backoff 1 and climbs again."""
        t = fig06.fluid.tracer
        total = t.get("total_buffer")
        first_peak = max(total.window(0, 18.0).values)
        trough = min(total.window(18.0, 24.0).values)
        later = max(total.window(24.0, fig06.second_backoff).values)
        assert trough < first_peak
        assert later > trough
