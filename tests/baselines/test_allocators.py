"""Unit tests for the strawman allocators (section 2.3)."""

import pytest

from repro.baselines.allocators import (
    BaseFirstFillingPolicy,
    EqualShareFillingPolicy,
    SimpleDrainingPlanner,
)
from repro.core.config import QAConfig
from repro.core.states import StateSequence


@pytest.fixture
def config():
    return QAConfig(layer_rate=5_000.0, max_layers=4, k_max=2,
                    packet_size=500, maintenance_floor=0.0,
                    base_floor=0.0)


class TestEqualShare:
    def test_distribute(self, config):
        policy = EqualShareFillingPolicy(config)
        assert policy._distribute(900.0, 3) == [300.0, 300.0, 300.0]

    def test_fills_first_layer_below_equal_target(self, config):
        policy = EqualShareFillingPolicy(config)
        # S1k1 total is 3600 -> equal target 1200 per layer; the base is
        # already above it, so L1 (first below) is chosen.
        buffers = [2_000.0, 0.0, 500.0]
        decision = policy.choose(18_000.0, buffers, 3, 5_000.0,
                                 needs_floor=[False] * 3)
        assert decision.layer == 1

    def test_converges_to_equal_distribution(self, config):
        policy = EqualShareFillingPolicy(config)
        rate, na, slope = 18_000.0, 3, 5_000.0
        buffers = [0.0] * na
        for _ in range(10_000):
            decision = policy.choose(rate, buffers, na, slope,
                                     needs_floor=[False] * na)
            if decision.layer is None:
                break
            buffers[decision.layer] += 100.0
            if sum(buffers) > 1e6:
                break
        # The ladder climbs in state-sized steps and layers fill in index
        # order, so the spread is bounded by one state's per-layer step.
        spread = max(buffers) - min(buffers)
        assert spread <= 2_000.0 + 1e-9


class TestBaseFirst:
    def test_distribute(self, config):
        policy = BaseFirstFillingPolicy(config)
        assert policy._distribute(900.0, 3) == [900.0, 0.0, 0.0]

    def test_only_base_is_filled(self, config):
        policy = BaseFirstFillingPolicy(config)
        rate, na, slope = 18_000.0, 3, 5_000.0
        buffers = [0.0] * na
        for _ in range(10_000):
            decision = policy.choose(rate, buffers, na, slope,
                                     needs_floor=[False] * na)
            if decision.layer is None:
                break
            assert decision.layer == 0
            buffers[decision.layer] += 100.0
            if buffers[0] > 1e6:
                break
        assert buffers[1] == 0.0
        assert buffers[2] == 0.0


class TestSimpleDrainingPlanner:
    def seq(self, config):
        return StateSequence(40_000.0, config.layer_rate, 4, 5_000.0, 2)

    def test_rejects_unknown_order(self, config):
        with pytest.raises(ValueError):
            SimpleDrainingPlanner(config, order="sideways")

    def test_equal_spreads_drain(self, config):
        planner = SimpleDrainingPlanner(config, order="equal")
        buffers = [10_000.0] * 4
        plan = planner.plan(12_000.0, buffers, 4, 0.1, self.seq(config))
        # Deficit 8000 B/s over 0.1 s = 800 B; 200 B from each layer.
        for drain in plan.drain:
            assert drain == pytest.approx(200.0)

    def test_bottom_up_takes_base_first(self, config):
        planner = SimpleDrainingPlanner(config, order="bottom_up")
        buffers = [10_000.0] * 4
        plan = planner.plan(16_000.0, buffers, 4, 0.1, self.seq(config))
        assert plan.drain[0] > 0
        assert plan.drain[3] == pytest.approx(0.0)

    def test_top_down_takes_top_first(self, config):
        planner = SimpleDrainingPlanner(config, order="top_down")
        buffers = [10_000.0] * 4
        plan = planner.plan(16_000.0, buffers, 4, 0.1, self.seq(config))
        assert plan.drain[3] > 0
        assert plan.drain[0] == pytest.approx(0.0)

    def test_respects_per_layer_cap(self, config):
        planner = SimpleDrainingPlanner(config, order="equal")
        buffers = [10_000.0] * 4
        plan = planner.plan(2_000.0, buffers, 4, 0.1, self.seq(config))
        cap = config.layer_rate * 0.1
        assert max(plan.drain) <= cap + 1e-9

    def test_shortfall_reported(self, config):
        planner = SimpleDrainingPlanner(config, order="equal")
        plan = planner.plan(2_000.0, [0.0] * 4, 4, 0.1, self.seq(config))
        assert plan.shortfall > 0

    def test_base_protection(self):
        cfg = QAConfig(layer_rate=5_000.0, max_layers=4, k_max=2,
                       base_floor=1.0, maintenance_floor=0.0)
        planner = SimpleDrainingPlanner(cfg, order="bottom_up")
        seq = StateSequence(40_000.0, cfg.layer_rate, 4, 5_000.0, 2)
        buffers = [5_000.0, 1_000.0, 0.0, 0.0]
        plan = planner.plan(16_000.0, buffers, 4, 0.1, seq)
        assert plan.drain[0] == pytest.approx(0.0)  # all protected


class TestIntegrationWithAdapter:
    def test_equal_share_runs_end_to_end(self):
        from repro.experiments.common import PaperWorkload, WorkloadConfig
        result = PaperWorkload(WorkloadConfig(
            allocator="equal_share", duration=10.0)).run()
        assert result.tracer.get("rate").mean() > 0

    def test_base_first_concentrates_buffering(self):
        from repro.experiments.common import PaperWorkload, WorkloadConfig
        result = PaperWorkload(WorkloadConfig(
            allocator="base_first", duration=15.0)).run()
        t = result.tracer
        base = t.get("buffer_L0").mean()
        upper = t.get("buffer_L2").mean()
        assert base > upper
