"""Unit tests for the fixed-quality (non-adaptive) baseline."""

from repro.baselines.static_stream import FixedQualityAdapter
from repro.core.config import QAConfig


class Harness:
    def __init__(self, max_layers=3, rate=30_000.0):
        self.config = QAConfig(layer_rate=5_000.0, max_layers=max_layers,
                               k_max=2, packet_size=500,
                               startup_delay=0.5)
        self.now = 0.0
        self.rate = rate
        self.adapter = FixedQualityAdapter(
            self.config,
            now_fn=lambda: self.now,
            rate_fn=lambda: self.rate,
            slope_fn=lambda: 5_000.0,
        )


class TestFixedQuality:
    def test_all_layers_active_immediately(self):
        h = Harness(max_layers=3)
        assert h.adapter.active_layers == 3

    def test_round_robin_layers(self):
        h = Harness(max_layers=3)
        layers = [h.adapter.pick_layer(seq)["layer"] for seq in range(6)]
        assert layers == [0, 1, 2, 0, 1, 2]

    def test_never_adapts_on_backoff(self):
        h = Harness()
        h.adapter.on_backoff(1_000.0)
        h.adapter.on_backoff(100.0)
        assert h.adapter.active_layers == 3
        assert not h.adapter.metrics.drops

    def test_tick_does_not_drop(self):
        h = Harness(rate=100.0)  # starved
        for step in range(100):
            h.now += 0.1
            h.adapter.tick()
        assert h.adapter.active_layers == 3

    def test_base_underflow_recorded(self):
        h = Harness(rate=100.0)
        # Playout starts; hardly any data arrives -> base underflows.
        for seq in range(2):
            h.adapter.pick_layer(seq)
        for step in range(50):
            h.now += 0.1
            h.adapter.tick()
        assert h.adapter.metrics.base_underflow_bytes > 0

    def test_stalls_versus_adaptive_end_to_end(self):
        """The whole point: over the same congested network, the
        non-adaptive 4-layer stream rebuffers while the adaptive one
        does not."""
        from repro.experiments.common import PaperWorkload, WorkloadConfig

        adaptive = PaperWorkload(WorkloadConfig(
            seed=1, duration=20.0)).run()
        fixed = PaperWorkload(WorkloadConfig(
            seed=1, duration=20.0),
            adapter_cls=FixedQualityAdapter).run()
        assert adaptive.playout.stall_count == 0
        assert (fixed.playout.stall_count > 0
                or fixed.playout.total_gap_bytes
                > adaptive.playout.total_gap_bytes)
