"""Unit tests for the layered stream model."""

import pytest

from repro.media.stream import LayeredStream


@pytest.fixture
def clip():
    return LayeredStream(layer_rate=10_000.0, n_layers=4, duration=60.0)


class TestValidation:
    def test_rejects_bad_layer_rate(self):
        with pytest.raises(ValueError):
            LayeredStream(layer_rate=0.0, n_layers=1)

    def test_rejects_zero_layers(self):
        with pytest.raises(ValueError):
            LayeredStream(layer_rate=1000.0, n_layers=0)

    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            LayeredStream(layer_rate=1000.0, n_layers=1, duration=0.0)


class TestConsumption:
    def test_consumption_rate_linear(self, clip):
        assert clip.consumption_rate(3) == 30_000.0
        assert clip.consumption_rate(0) == 0.0

    def test_consumption_rate_bounds(self, clip):
        with pytest.raises(ValueError):
            clip.consumption_rate(5)
        with pytest.raises(ValueError):
            clip.consumption_rate(-1)


class TestBytes:
    def test_layer_bytes(self, clip):
        assert clip.layer_bytes(0, 10.0) == 100_000.0

    def test_layer_bytes_clamped_to_duration(self, clip):
        assert clip.layer_bytes(0, 120.0) == clip.layer_bytes(0, 60.0)

    def test_layer_bytes_validation(self, clip):
        with pytest.raises(ValueError):
            clip.layer_bytes(9, 1.0)
        with pytest.raises(ValueError):
            clip.layer_bytes(0, -1.0)

    def test_total_bytes(self, clip):
        assert clip.total_bytes() == 4 * 10_000 * 60
        assert clip.total_bytes(layers=2) == 2 * 10_000 * 60

    def test_total_bytes_unbounded_clip(self):
        clip = LayeredStream(layer_rate=1000.0, n_layers=2)
        assert clip.total_bytes() is None


class TestDecoding:
    def test_all_present(self, clip):
        assert clip.decodable_layers([True] * 4) == 4

    def test_gap_truncates(self, clip):
        assert clip.decodable_layers([True, False, True, True]) == 1

    def test_missing_base_means_nothing_decodable(self, clip):
        assert clip.decodable_layers([False, True, True, True]) == 0

    def test_short_vector(self, clip):
        assert clip.decodable_layers([True, True]) == 2


class TestPacketRate:
    def test_packets_per_second(self, clip):
        assert clip.packets_per_second(1000, 2) == 20.0

    def test_rejects_bad_packet_size(self, clip):
        with pytest.raises(ValueError):
            clip.packets_per_second(0, 1)
