"""Unit tests for the client playout engine."""

import pytest

from repro.media.playout import PlayoutBuffer


def make(playout_start=1.0, layer_rate=1000.0, max_layers=4,
         layer_start_threshold=0.0):
    return PlayoutBuffer(layer_rate=layer_rate, max_layers=max_layers,
                         playout_start=playout_start,
                         layer_start_threshold=layer_start_threshold)


class TestStartup:
    def test_not_playing_before_start(self):
        po = make(playout_start=1.0)
        po.on_packet(0.5, 0, 500)
        po.advance(0.9)
        assert not po.playing

    def test_playing_after_start(self):
        po = make(playout_start=1.0)
        po.on_packet(0.5, 0, 500)
        po.advance(1.1)
        assert po.playing
        assert po.stats.startup_time == pytest.approx(1.0)

    def test_starting_with_empty_base_counts_a_stall(self):
        po = make(playout_start=1.0)
        po.advance(1.1)
        assert po.stalled
        assert po.stats.stall_count == 1


class TestConsumption:
    def test_base_drains_at_layer_rate(self):
        po = make()
        po.on_packet(0.0, 0, 3000)
        po.advance(2.0)  # playout started at 1.0; 1 s consumed
        assert po.level(0) == pytest.approx(2000)

    def test_data_before_start_is_preserved(self):
        po = make()
        po.on_packet(0.0, 0, 3000)
        po.advance(0.9)
        assert po.level(0) == 3000

    def test_played_bytes_accumulate(self):
        po = make()
        po.on_packet(0.0, 0, 3000)
        po.advance(3.0)
        assert po.stats.played_bytes == pytest.approx(2000)


class TestStalls:
    def test_base_underflow_stalls(self):
        po = make()
        po.on_packet(0.0, 0, 500)
        po.advance(2.0)  # wants 1000, has 500
        assert po.stalled
        assert po.stats.stall_count == 1

    def test_stall_pauses_consumption(self):
        po = make()
        po.on_packet(0.0, 0, 500)
        po.advance(2.0)
        po.advance(5.0)
        # No further consumption while stalled.
        assert po.stats.stall_count == 1
        assert po.buffers.consumed(0) == pytest.approx(500)

    def test_resume_after_refill(self):
        po = make()
        po.on_packet(0.0, 0, 500)
        po.advance(2.0)
        assert po.stalled
        po.on_packet(2.5, 0, 500)  # 500 >= resume threshold (100)
        assert not po.stalled
        assert po.stats.stall_time == pytest.approx(0.5)

    def test_consumption_resumes_from_resume_time(self):
        po = make()
        po.on_packet(0.0, 0, 500)
        po.advance(2.0)
        po.on_packet(3.0, 0, 1000)
        po.advance(3.5)
        assert po.buffers.consumed(0) == pytest.approx(500 + 500)


class TestEnhancementLayers:
    def test_enhancement_underflow_is_a_gap_not_a_stall(self):
        po = make()
        po.on_packet(0.0, 0, 10_000)
        po.on_packet(0.0, 1, 500)
        po.advance(3.0)
        assert not po.stalled
        assert po.stats.gap_bytes(1) > 0
        assert po.stats.stall_count == 0

    def test_layer_start_threshold(self):
        po = make(layer_start_threshold=1000.0)
        po.on_packet(0.0, 0, 10_000)
        po.advance(1.5)
        po.on_packet(1.5, 1, 500)  # below threshold: not consuming yet
        po.advance(2.0)
        assert po.level(1) == 500
        po.on_packet(2.0, 1, 500)  # threshold reached
        po.advance(3.0)
        assert po.level(1) < 1000

    def test_activation_is_ordered(self):
        po = make()
        po.on_packet(0.0, 2, 500)
        assert po.buffers.is_active(0)
        assert po.buffers.is_active(1)
        assert po.buffers.is_active(2)
        assert po.active_layers == 3


class TestServerSync:
    def test_drop_follows_server_active_count(self):
        po = make()
        po.on_packet(0.0, 0, 1000)
        po.on_packet(0.0, 1, 1000)
        po.on_packet(0.0, 2, 1000)
        assert po.active_layers == 3
        po.on_packet(0.5, 0, 1000, server_active=2)
        assert po.active_layers == 2
        assert not po.buffers.is_active(2)

    def test_server_active_never_drops_base(self):
        po = make()
        po.on_packet(0.0, 0, 1000)
        po.on_packet(0.5, 0, 1000, server_active=0)
        assert po.active_layers == 1
        assert po.buffers.is_active(0)

    def test_total_buffered(self):
        po = make()
        po.on_packet(0.0, 0, 1000)
        po.on_packet(0.0, 1, 500)
        assert po.total_buffered() == 1500
        assert po.levels() == [1000, 500]
