"""The packet-vs-fluid differential harness.

One :class:`DifferentialCase` describes a scripted scenario both
backends understand; :func:`compare_backends` runs it through the
packet-quantum replay (:class:`repro.core.fluid.FluidRun` — the path
every golden figure renders from) and the analytic engine
(:class:`repro.sim.fluid.FluidEngine`), then checks agreement on the
paper-figure quantities. Tolerances are centralized in
:class:`Tolerances` and documented — with the measured residuals that
justify them — in docs/MECHANISM.md ("Fluid fast path"); change them
only together with that table.

Why the tolerances are not zero: the packet backend quantizes sends
(eighth-size quanta), evaluates decisions on the adapter's
``drain_period`` tick, and its §4.1 filling policy walks per-layer
buffer states the fluid model integrates away. Those are bounded
discretization gaps, not free parameters — e.g. a drop instant can lag
by at most a couple of decision ticks, and a layer add can hover a
quantum below its target for a while (Figure 6 does exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import QAConfig
from repro.core.fluid import FluidResult, FluidRun, ScriptedAimd
from repro.sim.fluid import FluidEngine, FluidFlowResult


@dataclass(frozen=True)
class Tolerances:
    """Agreement bounds for one differential comparison."""

    #: Relative gap of mean transmission rate (trajectory integral).
    mean_rate_rel: float = 0.01
    #: Absolute gap of time-averaged active layers.
    mean_layers_abs: float = 0.15
    #: Fraction of the sampling grid where the instantaneous layer
    #: counts may disagree (decision-instant skew shows up here).
    layer_mismatch_fraction: float = 0.15
    #: Drop-instant skew (seconds): a couple of decision ticks.
    drop_time: float = 0.3
    #: Add-instant skew (seconds): the packet policy can hover a
    #: quantum under its target for a while (Figure 6 does).
    add_time: float = 2.5
    #: Bounds on the fluid/packet ratio of time-averaged total
    #: buffering. Wide on purpose: the packet filling policy starves
    #: the top layer near drops, so packet buffers run above fluid.
    buffer_ratio: Optional[tuple[float, float]] = (0.6, 1.4)


@dataclass(frozen=True)
class DifferentialCase:
    """A scripted scenario both backends accept, plus its tolerances."""

    name: str
    config: QAConfig
    initial_rate: float
    slope: float
    backoff_times: tuple[float, ...] = ()
    max_rate: Optional[float] = None
    duration: float = 40.0
    tolerances: Tolerances = field(default_factory=Tolerances)

    def scripted(self) -> ScriptedAimd:
        return ScriptedAimd(self.initial_rate, self.slope,
                            backoff_times=self.backoff_times,
                            max_rate=self.max_rate)

    def run_packet(self) -> FluidResult:
        return FluidRun(self.config, self.scripted(),
                        duration=self.duration).run()

    def run_fluid(self) -> FluidFlowResult:
        return FluidEngine(self.config, self.scripted(),
                           duration=self.duration).run()


#: The paper's illustrative scenarios, lifted verbatim from the
#: experiment modules (figs 2, 5, 6), plus a forced-drop case that
#: exercises the draining/drop path hard. The forced-drop case skips
#: the buffer-ratio check: after a deep drop the packet backend keeps
#: stranded upper-layer bytes the fluid model discards with the layer,
#: so total buffering is not a meaningful comparison there.
PAPER_CASES = [
    DifferentialCase(
        name="fig02",
        config=QAConfig(layer_rate=5000, max_layers=2, k_max=2,
                        packet_size=250, startup_delay=0.5),
        initial_rate=4500, slope=2000, backoff_times=(12.0, 22.0),
        max_rate=12000, duration=30.0),
    DifferentialCase(
        name="fig05",
        config=QAConfig(layer_rate=2500, max_layers=5, k_max=1,
                        packet_size=200, startup_delay=0.5),
        initial_rate=3750, slope=900, backoff_times=(28.0,),
        max_rate=15625, duration=40.0),
    DifferentialCase(
        name="fig06",
        config=QAConfig(layer_rate=4000, max_layers=3, k_max=3,
                        packet_size=200, startup_delay=0.5),
        initial_rate=12120, slope=1500, backoff_times=(18.0, 34.0),
        max_rate=20400, duration=44.0),
    DifferentialCase(
        name="forced-drop",
        config=QAConfig(layer_rate=2500, max_layers=4, k_max=2,
                        packet_size=200, startup_delay=0.5),
        initial_rate=11000, slope=800,
        backoff_times=(14.0, 15.0, 16.5, 30.0), max_rate=12500,
        duration=40.0,
        tolerances=Tolerances(buffer_ratio=None,
                              layer_mismatch_fraction=0.2)),
]


def _series_average(tracer, name: str) -> Optional[float]:
    try:
        return tracer.get(name).time_average()
    except KeyError:
        return None


def compare_backends(case: DifferentialCase,
                     packet: FluidResult,
                     fluid: FluidFlowResult) -> list[str]:
    """All tolerance violations between the two runs (empty = agree)."""
    tol = case.tolerances
    problems: list[str] = []

    # Mean transmission rate: both backends integrate the same scripted
    # trajectory; any gap is pure discretization.
    rate_p = _series_average(packet.tracer, "rate")
    rate_f = _series_average(fluid.tracer, "rate")
    if rate_p and rate_f:
        rel = abs(rate_p - rate_f) / rate_p
        if rel > tol.mean_rate_rel:
            problems.append(
                f"mean rate: packet {rate_p:.1f} vs fluid {rate_f:.1f} "
                f"(rel {rel:.4f} > {tol.mean_rate_rel})")

    # Layer counts over time: time-average plus pointwise mismatch.
    layers_p = packet.tracer.get("layers")
    layers_f = fluid.tracer.get("layers")
    gap = abs(layers_p.time_average() - layers_f.time_average())
    if gap > tol.mean_layers_abs:
        problems.append(
            f"mean layers: packet {layers_p.time_average():.3f} vs "
            f"fluid {layers_f.time_average():.3f} "
            f"(gap {gap:.3f} > {tol.mean_layers_abs})")
    grid = [i * 0.1 for i in range(int(case.duration * 10))]
    mismatched = sum(
        1 for t in grid
        if round(layers_p.value_at(t)) != round(layers_f.value_at(t)))
    fraction = mismatched / len(grid)
    if fraction > tol.layer_mismatch_fraction:
        problems.append(
            f"layer series: {fraction:.3f} of the grid disagrees "
            f"(> {tol.layer_mismatch_fraction})")

    # Drop events: same count, same layers, instants within tolerance.
    drops_p = packet.metrics.drops
    drops_f = fluid.metrics.drops
    if len(drops_p) != len(drops_f):
        problems.append(
            f"drop count: packet {len(drops_p)} vs fluid {len(drops_f)}")
    for ev_p, ev_f in zip(drops_p, drops_f):
        if ev_p.layer != ev_f.layer:
            problems.append(
                f"drop layer: packet L{ev_p.layer}@{ev_p.time:.2f} vs "
                f"fluid L{ev_f.layer}@{ev_f.time:.2f}")
        skew = abs(ev_p.time - ev_f.time)
        if skew > tol.drop_time:
            problems.append(
                f"drop instant: packet {ev_p.time:.3f} vs fluid "
                f"{ev_f.time:.3f} (skew {skew:.3f} > {tol.drop_time})")

    # Add events: same count, instants within the hover tolerance.
    adds_p = packet.metrics.adds
    adds_f = fluid.metrics.adds
    if len(adds_p) != len(adds_f):
        problems.append(
            f"add count: packet {len(adds_p)} vs fluid {len(adds_f)}")
    for (t_p, _), (t_f, _) in zip(adds_p, adds_f):
        skew = abs(t_p - t_f)
        if skew > tol.add_time:
            problems.append(
                f"add instant: packet {t_p:.3f} vs fluid {t_f:.3f} "
                f"(skew {skew:.3f} > {tol.add_time})")

    # Total buffering: coarse ratio bound (see module docstring).
    if tol.buffer_ratio is not None:
        buf_p = packet.tracer.get("total_buffer").time_average()
        buf_f = fluid.tracer.get("total_buffer").time_average()
        if buf_p > 0:
            ratio = buf_f / buf_p
            lo, hi = tol.buffer_ratio
            if not lo <= ratio <= hi:
                problems.append(
                    f"buffer ratio fluid/packet {ratio:.3f} outside "
                    f"[{lo}, {hi}] (packet {buf_p:.0f}, fluid {buf_f:.0f})")

    return problems
