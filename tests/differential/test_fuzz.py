"""Hypothesis scenario fuzzing across the packet/fluid backends.

Random-but-constrained scripted scenarios (random codec geometry,
sawtooth slope, backoff scripts) run through both backends. Unlike the
hand-validated paper cases, the fuzz domain deliberately includes
*marginal* scenarios where an add or drop sits right on its threshold;
there the packet policy's slower effective consumption (its filling
walk starves the top layer) can move a borderline decision by whole
seconds and let one extra add/drop pair through. Event-instant pairing
is therefore owned by ``test_paper_figures``; this file asserts the
invariants that hold across the whole domain:

- mean transmission rate agrees (the trajectory is shared; measured
  worst case 0.07% over the sweep, asserted at 1%);
- time-averaged layers agree (measured worst 0.28, asserted at 0.6);
- the backends disagree by at most a marginal add/drop flurry
  (measured worst: 3 adds / 2 drops of skew, final layers within 1);
- the fluid run conserves bytes exactly.

Both tests are derandomized so CI failures reproduce locally. The fast
subset always runs; the wide sweep rides behind ``--run-slow``, the
same switch the golden suite uses for its expensive artifacts.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import QAConfig
from tests.differential.harness import DifferentialCase, Tolerances

pytestmark = pytest.mark.differential

DURATION = 20.0


@st.composite
def scripted_cases(draw) -> DifferentialCase:
    layer_rate = draw(st.sampled_from([2000.0, 2500.0, 4000.0, 5000.0]))
    max_layers = draw(st.integers(min_value=3, max_value=5))
    k_max = draw(st.integers(min_value=1, max_value=3))
    slope = draw(st.floats(min_value=600.0, max_value=2000.0))
    initial = layer_rate * draw(
        st.floats(min_value=0.9, max_value=3.0))
    cap = layer_rate * draw(st.floats(min_value=3.0, max_value=6.0))
    n_backoffs = draw(st.integers(min_value=0, max_value=3))
    # Backoffs after playout has settled, spaced >= 4 s so decision-tick
    # skew from one event cannot cascade into the next.
    backoffs = tuple(4.0 + 4.0 * i + draw(
        st.floats(min_value=0.0, max_value=3.0))
        for i in range(n_backoffs))
    return DifferentialCase(
        name="fuzz",
        config=QAConfig(layer_rate=layer_rate, max_layers=max_layers,
                        k_max=k_max, packet_size=200,
                        startup_delay=0.5),
        initial_rate=initial, slope=slope, backoff_times=backoffs,
        max_rate=cap, duration=DURATION,
        tolerances=Tolerances())


def _check(case: DifferentialCase) -> None:
    packet = case.run_packet()
    fluid = case.run_fluid()
    problems: list[str] = []

    rate_p = packet.tracer.get("rate").time_average()
    rate_f = fluid.tracer.get("rate").time_average()
    if abs(rate_p - rate_f) / rate_p > 0.01:
        problems.append(f"mean rate: {rate_p:.1f} vs {rate_f:.1f}")

    layers_p = packet.tracer.get("layers").time_average()
    layers_f = fluid.tracer.get("layers").time_average()
    if abs(layers_p - layers_f) > 0.6:
        problems.append(f"mean layers: {layers_p:.3f} vs {layers_f:.3f}")

    if abs(len(packet.metrics.adds) - len(fluid.metrics.adds)) > 4:
        problems.append(
            f"add count: {len(packet.metrics.adds)} vs "
            f"{len(fluid.metrics.adds)}")
    if abs(len(packet.metrics.drops) - len(fluid.metrics.drops)) > 3:
        problems.append(
            f"drop count: {len(packet.metrics.drops)} vs "
            f"{len(fluid.metrics.drops)}")
    if abs(packet.adapter.active_layers - fluid.final_layers) > 1:
        problems.append(
            f"final layers: {packet.adapter.active_layers} vs "
            f"{fluid.final_layers}")

    # The fluid run must conserve bytes regardless of agreement.
    if abs(fluid.conservation_error) > max(
            1e-6 * fluid.sent_bytes, 1e-6):
        problems.append(
            f"conservation error {fluid.conservation_error!r}")

    assert not problems, "\n".join([f"case: {case!r}"] + problems)


@settings(max_examples=8, deadline=None, derandomize=True,
          suppress_health_check=[HealthCheck.too_slow])
@given(case=scripted_cases())
def test_fuzzed_scenarios_agree_fast(case):
    _check(case)


@pytest.mark.slow
@settings(max_examples=60, deadline=None, derandomize=True,
          suppress_health_check=[HealthCheck.too_slow])
@given(case=scripted_cases())
def test_fuzzed_scenarios_agree_sweep(case):
    _check(case)
