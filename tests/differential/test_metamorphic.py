"""Metamorphic invariances of the fluid backends.

Instead of comparing against a reference implementation, these tests
transform the *input* in ways with a known effect on the *output*:

- time rescaling: stretching time by ``a`` (slope / a, all scripted
  instants and every time-dimensioned config field x a) must scale
  byte quantities by ``a`` and decision instants by ``a``, exactly —
  the analytic engine has no step size to leak through;
- trace decimation: sampling is observation, never actuation — running
  with the tracer disabled must not move a single decision;
- flow relabeling: permuting the flows of a batch permutes its result
  arrays verbatim (flows never interact);
- seed splitting: a population built from index-keyed seeds is
  identical however it is partitioned into batches.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import QAConfig
from repro.core.fluid import ScriptedAimd
from repro.sim.fluid import FluidEngine
from repro.sim.fluid_batch import FlowClassBatch, scripted_backoffs

pytestmark = pytest.mark.differential

CONFIG = QAConfig(layer_rate=2500, max_layers=5, k_max=2,
                  packet_size=200, startup_delay=0.5)
SCRIPT = dict(initial_rate=3750.0, slope=900.0,
              backoff_times=(13.0, 28.0), max_rate=15625.0)
DURATION = 40.0


def _run(config: QAConfig, duration: float, *, slope: float,
         backoffs: tuple, sample_period=0.02):
    aimd = ScriptedAimd(SCRIPT["initial_rate"], slope,
                        backoff_times=backoffs,
                        max_rate=SCRIPT["max_rate"])
    return FluidEngine(config, aimd, duration=duration,
                       sample_period=sample_period).run()


@pytest.mark.parametrize("alpha", [0.5, 2.0, 3.0])
def test_time_rescaling_is_exact(alpha):
    base = _run(CONFIG, DURATION, slope=SCRIPT["slope"],
                backoffs=SCRIPT["backoff_times"])
    scaled_config = CONFIG.with_(
        startup_delay=CONFIG.startup_delay * alpha,
        maintenance_floor=CONFIG.maintenance_floor * alpha,
        base_floor=CONFIG.base_floor * alpha,
        drain_period=CONFIG.drain_period * alpha,
    )
    scaled = _run(scaled_config, DURATION * alpha,
                  slope=SCRIPT["slope"] / alpha,
                  backoffs=tuple(t * alpha
                                 for t in SCRIPT["backoff_times"]))

    assert scaled.final_layers == base.final_layers
    assert scaled.sent_bytes == pytest.approx(
        alpha * base.sent_bytes, rel=1e-9)
    assert scaled.discarded_bytes == pytest.approx(
        alpha * base.discarded_bytes, rel=1e-6, abs=1e-6)
    assert scaled.final_buffer == pytest.approx(
        alpha * base.final_buffer, rel=1e-6)
    assert len(scaled.metrics.adds) == len(base.metrics.adds)
    for (t_base, layer_base), (t_scaled, layer_scaled) in zip(
            base.metrics.adds, scaled.metrics.adds):
        assert layer_scaled == layer_base
        assert t_scaled == pytest.approx(alpha * t_base, abs=1e-5 * alpha)
    assert len(scaled.metrics.drops) == len(base.metrics.drops)
    for ev_base, ev_scaled in zip(base.metrics.drops,
                                  scaled.metrics.drops):
        assert ev_scaled.layer == ev_base.layer
        assert ev_scaled.time == pytest.approx(
            alpha * ev_base.time, abs=1e-5 * alpha)


def test_tracing_never_moves_a_decision():
    traced = _run(CONFIG, DURATION, slope=SCRIPT["slope"],
                  backoffs=SCRIPT["backoff_times"])
    headless = _run(CONFIG, DURATION, slope=SCRIPT["slope"],
                    backoffs=SCRIPT["backoff_times"], sample_period=None)
    assert headless.metrics.adds == traced.metrics.adds
    assert [(e.time, e.layer) for e in headless.metrics.drops] == \
           [(e.time, e.layer) for e in traced.metrics.drops]
    assert headless.sent_bytes == traced.sent_bytes
    assert headless.final_buffer == traced.final_buffer
    assert headless.epochs == traced.epochs


def _padded_scripts(indices, seed=11, duration=30.0):
    scripts = [scripted_backoffs(seed, i, duration, 6.0, min_gap=0.2)
               for i in indices]
    width = max(1, max(len(s) for s in scripts))
    out = np.full((len(scripts), width), np.inf)
    for row, script in enumerate(scripts):
        out[row, :len(script)] = script
    return out


_BATCH_FIELDS = ("mean_rate", "mean_layers", "buffer", "sent_bytes",
                 "consumed_bytes", "discarded_bytes", "stall_bytes",
                 "adds", "drops", "layers")


def _batch(indices, rates, duration=30.0):
    return FlowClassBatch(
        CONFIG, len(indices), 900.0, np.asarray(rates),
        _padded_scripts(indices), duration, max_rate=40_000.0).run()


def test_flow_relabeling_permutes_results_verbatim():
    indices = list(range(12))
    rates = [15_000.0 + 500.0 * i for i in indices]
    perm = [7, 0, 11, 3, 9, 1, 5, 10, 2, 8, 4, 6]
    straight = _batch(indices, rates)
    shuffled = _batch([indices[p] for p in perm],
                      [rates[p] for p in perm])
    for name in _BATCH_FIELDS:
        expect = getattr(straight, name)[perm]
        assert np.array_equal(getattr(shuffled, name), expect), name


def test_seed_split_concatenation_is_bit_identical():
    indices = list(range(40))
    rates = [18_000.0] * 40
    whole = _batch(indices, rates)
    left = _batch(indices[:13], rates[:13])
    right = _batch(indices[13:], rates[13:])
    for name in _BATCH_FIELDS:
        glued = np.concatenate(
            [getattr(left, name), getattr(right, name)])
        assert np.array_equal(glued, getattr(whole, name)), name
