"""Differential backend agreement on the paper's illustrative figures.

Each case runs the identical scripted scenario through the packet
replay and the analytic fluid engine and asserts the harness's
tolerance report is empty. These are the fast differential tests — the
whole file is a few seconds — and the first thing to re-run after
touching the adapter, the add/drop policy or the fluid solver.
"""

from __future__ import annotations

import pytest

from tests.differential.harness import (
    PAPER_CASES,
    compare_backends,
)

pytestmark = pytest.mark.differential


@pytest.mark.parametrize("case", PAPER_CASES, ids=lambda c: c.name)
def test_backends_agree_on_paper_figures(case):
    problems = compare_backends(case, case.run_packet(), case.run_fluid())
    assert not problems, "\n".join(problems)


def test_scenario_layer_backends_agree_on_mean_quantities():
    """The same agreement holds one level up, through ScenarioConfig.

    This pins the backend-selection plumbing itself: a scripted spec run
    via ``backend="fluid"`` vs ``backend="packet"`` must deliver the
    same mean rate and layers, not just the low-level engines.
    """
    from repro.scenario import (
        ScenarioConfig,
        ScriptedQAFlowSpec,
        run_scenario,
    )

    case = PAPER_CASES[1]  # fig05
    spec = ScriptedQAFlowSpec(
        config=case.config, initial_rate=case.initial_rate,
        slope=case.slope, backoff_times=case.backoff_times,
        max_rate=case.max_rate)
    results = {
        backend: run_scenario(ScenarioConfig(
            flows=(spec,), duration=case.duration, backend=backend))
        for backend in ("packet", "fluid")
    }
    f_packet = results["packet"].flows[0]
    f_fluid = results["fluid"].flows[0]
    assert f_packet.mean_rate == pytest.approx(f_fluid.mean_rate, rel=0.01)
    assert f_packet.mean_layers() == pytest.approx(
        f_fluid.mean_layers(), abs=0.15)
    assert f_fluid.flow_id < 0  # synthetic id, never a transport's
