"""Determinism guarantees of the fluid backend.

Mirror of ``test_determinism.py`` for the analytic path: a fluid
scenario must be bit-for-bit reproducible run to run, and the rendered
flock-scale artifact must hash identically whether executed in-process
or in a worker process — numpy vectorization and process boundaries
must not leak into a single float.
"""

from __future__ import annotations

import concurrent.futures
import hashlib

from repro.core.config import QAConfig
from repro.experiments import runner
from repro.scenario import (
    ScenarioConfig,
    ScenarioResult,
    ScriptedQAFlowSpec,
    run_scenario,
)
from tests.scenario.test_determinism import fingerprint

DURATION = 25.0


def build_config() -> ScenarioConfig:
    qa = QAConfig(layer_rate=2500, max_layers=5, k_max=2,
                  packet_size=200, startup_delay=0.5)
    flows = tuple(
        ScriptedQAFlowSpec(
            config=qa,
            initial_rate=4_000.0 + 1_500.0 * i,
            slope=800.0 + 100.0 * i,
            backoff_times=(8.0 + i, 17.0 + 0.5 * i),
            max_rate=18_000.0,
            label=f"scripted{i}")
        for i in range(4)
    )
    return ScenarioConfig(flows=flows, duration=DURATION,
                          backend="fluid")


def run_once() -> ScenarioResult:
    return run_scenario(build_config())


def test_fluid_scenarios_are_bit_for_bit_reproducible():
    assert fingerprint(run_once()) == fingerprint(run_once())


def test_fluid_and_packet_fingerprints_stay_close_but_distinct():
    """Backends agree to tolerance, not to the bit — the differential
    harness owns the tolerance; determinism must not blur the two."""
    fluid = fingerprint(run_once())
    packet = fingerprint(run_scenario(ScenarioConfig(
        flows=build_config().flows, duration=DURATION,
        backend="packet")))
    assert fluid != packet


def test_serial_and_pooled_flock_scale_hash_identically():
    """The artifact's sha256 must not depend on where it is computed."""
    overrides = {"counts": (50, 200), "duration": 15.0}
    serial_text, _ = runner._execute("flock-scale", overrides)
    with concurrent.futures.ProcessPoolExecutor(1) as pool:
        pooled_text, _ = pool.submit(
            runner._execute, "flock-scale", overrides).result()
    serial_sha = hashlib.sha256(serial_text.encode()).hexdigest()
    pooled_sha = hashlib.sha256(pooled_text.encode()).hexdigest()
    assert serial_sha == pooled_sha
