"""Determinism guarantees of multi-flow scenarios.

The acceptance bar for the scenario layer: an 8-QA-flow run with TCP
cross-traffic must be bit-for-bit reproducible run to run, and the
rendered multiflow artifact must hash identically whether executed
in-process or in a worker process (the parallel runner's contract).
"""

from __future__ import annotations

import concurrent.futures
import hashlib

from repro.experiments import multiflow_fairness, runner
from repro.scenario import ScenarioResult

N_QA = 8
N_TCP = 4
DURATION = 10.0


def fingerprint(result: ScenarioResult) -> str:
    """Exact textual image of every float the result exposes.

    Flow ids are excluded: they come from a process-global counter and
    differ between runs without affecting any simulated outcome.
    """
    parts = [repr(result.fairness), repr(result.link_utilization)]
    for flow in result.flows:
        parts.append(
            f"{flow.label}:{flow.bytes_delivered}:"
            f"{flow.mean_rate!r}:{flow.share!r}:{flow.start!r}")
    return "|".join(parts)


def run_once() -> ScenarioResult:
    scenario = multiflow_fairness.build_scenario(
        N_QA, N_TCP, duration=DURATION)
    return scenario.run()


def test_eight_qa_flows_are_bit_for_bit_reproducible():
    assert fingerprint(run_once()) == fingerprint(run_once())


def test_seed_changes_the_outcome():
    base = multiflow_fairness.build_scenario(
        N_QA, N_TCP, duration=DURATION).run()
    other = multiflow_fairness.build_scenario(
        N_QA, N_TCP, duration=DURATION, seed=2).run()
    assert fingerprint(base) != fingerprint(other)


def test_serial_and_pooled_render_hash_identically():
    """The artifact's sha256 must not depend on where it is computed."""
    overrides = {"counts": (N_QA,), "duration": DURATION}
    serial_text, _ = runner._execute("multiflow-fairness", overrides)
    with concurrent.futures.ProcessPoolExecutor(1) as pool:
        pooled_text, _ = pool.submit(
            runner._execute, "multiflow-fairness", overrides).result()
    serial_sha = hashlib.sha256(serial_text.encode()).hexdigest()
    pooled_sha = hashlib.sha256(pooled_text.encode()).hexdigest()
    assert serial_sha == pooled_sha
