"""Scenario builder unit tests: wiring, labels, telemetry switch."""

from __future__ import annotations

import pytest

from repro.scenario import (
    CbrFlowSpec,
    QAFlowSpec,
    RapFlowSpec,
    Scenario,
    ScenarioConfig,
    TcpFlowSpec,
)
from repro.sim.parking_lot import ParkingLotConfig
from repro.sim.topology import DumbbellConfig

FAST_LINK = DumbbellConfig(bottleneck_bandwidth=60_000.0,
                           queue_capacity_packets=30)


def test_flows_build_in_list_order_with_default_labels():
    scenario = Scenario(ScenarioConfig(
        flows=(QAFlowSpec(), RapFlowSpec(), TcpFlowSpec(), CbrFlowSpec()),
        topology=FAST_LINK, duration=1.0))
    assert [f.kind for f in scenario.flows] == ["qa", "rap", "tcp", "cbr"]
    assert [f.label for f in scenario.flows] == ["qa0", "rap1", "tcp2",
                                                "cbr3"]
    assert len({f.flow_id for f in scenario.flows}) == 4


def test_empty_scenario_is_rejected():
    with pytest.raises(ValueError, match="at least one flow"):
        ScenarioConfig(flows=())


def test_parking_lot_flow_count_is_validated():
    with pytest.raises(ValueError, match="exactly 4 flows"):
        ScenarioConfig(
            flows=(QAFlowSpec(), TcpFlowSpec()),
            topology=ParkingLotConfig(n_hops=3))


def test_parking_lot_monitors_every_hop():
    config = ScenarioConfig(
        flows=(QAFlowSpec(), TcpFlowSpec(), TcpFlowSpec()),
        topology=ParkingLotConfig(n_hops=2), duration=5.0)
    scenario = Scenario(config)
    assert len(scenario.monitors) == 2
    result = scenario.run()
    assert len(result.link_utilization) == 2
    assert result.utilization > 0


def test_flow_randomness_depends_only_on_slot_and_kind():
    """Changing one flow's kind must not perturb another flow's draws."""
    def tcp_start(first_flow):
        scenario = Scenario(ScenarioConfig(
            flows=(first_flow, TcpFlowSpec()),
            topology=FAST_LINK, duration=1.0))
        return scenario.flows[1].start

    assert tcp_start(QAFlowSpec()) == tcp_start(CbrFlowSpec())


def test_stop_time_halts_a_qa_flow():
    scenario = Scenario(ScenarioConfig(
        flows=(QAFlowSpec(stop=3.0), TcpFlowSpec(start=0.0)),
        topology=FAST_LINK, duration=10.0))
    result = scenario.run()
    qa, tcp = result.flows
    assert qa.mean_rate < tcp.mean_rate


def test_telemetry_off_preserves_packet_fates():
    """The bus is observation only: disabling it changes no delivery."""
    def delivered(telemetry: bool):
        scenario = Scenario(ScenarioConfig(
            flows=(QAFlowSpec(), QAFlowSpec()),
            topology=FAST_LINK, duration=8.0, telemetry=telemetry))
        return [f.bytes_delivered for f in scenario.run().flows]

    assert delivered(True) == delivered(False)


def test_telemetry_off_records_nothing_but_keeps_metrics():
    scenario = Scenario(ScenarioConfig(
        flows=(QAFlowSpec(),), topology=FAST_LINK,
        duration=5.0, telemetry=False))
    result = scenario.run()
    flow = result.flows[0]
    assert flow.bytes_delivered > 0
    assert flow.mean_layers() is None
    assert flow.session is not None
    assert "mean_layers" not in flow.session.summary()


def test_summary_lists_every_flow_rate():
    scenario = Scenario(ScenarioConfig(
        flows=(QAFlowSpec(label="video"), TcpFlowSpec(label="web")),
        topology=FAST_LINK, duration=5.0))
    summary = scenario.run().summary()
    assert summary["n_flows"] == 2
    assert "rate_video" in summary and "rate_web" in summary
    assert 0.0 < summary["fairness"] <= 1.0


def test_trace_spans_are_deterministic_across_runs():
    def digest():
        scenario = Scenario(ScenarioConfig(
            flows=(QAFlowSpec(), QAFlowSpec()), topology=FAST_LINK,
            duration=3.0, seed=7, trace_spans=True))
        scenario.run()
        return scenario.spans.digest(), scenario.spans.trace_ids()

    first_digest, first_ids = digest()
    second_digest, second_ids = digest()
    assert first_digest == second_digest
    assert first_ids == second_ids
    assert len(first_ids) == 2  # one trace per QA flow


def test_trace_spans_cover_ticks_and_decisions():
    scenario = Scenario(ScenarioConfig(
        flows=(QAFlowSpec(),), topology=FAST_LINK,
        duration=3.0, trace_spans=True))
    scenario.run()
    names = {s.name for s in scenario.spans}
    assert "qa.tick" in names
    assert "qa.add_eval" in names
    assert scenario.observability()["spans"]["recorded"] > 0


def test_trace_spans_off_is_free_and_absent_from_observability():
    scenario = Scenario(ScenarioConfig(
        flows=(QAFlowSpec(),), topology=FAST_LINK, duration=2.0))
    scenario.run()
    assert len(scenario.spans) == 0
    assert "spans" not in scenario.observability()


def test_span_presence_does_not_change_flow_outcomes():
    def rates(trace_spans):
        scenario = Scenario(ScenarioConfig(
            flows=(QAFlowSpec(), QAFlowSpec()), topology=FAST_LINK,
            duration=4.0, seed=3, trace_spans=trace_spans))
        return [f.bytes_delivered for f in scenario.run().flows]

    assert rates(False) == rates(True)
