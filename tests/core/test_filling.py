"""Unit and property tests for the per-packet filling algorithm."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import formulas
from repro.core.config import QAConfig
from repro.core.filling import FillingDecision, FillingPolicy
from repro.core.formulas import SCENARIO_ONE, SCENARIO_TWO
from repro.core.states import StateSequence


@pytest.fixture
def policy(qa_config):
    return FillingPolicy(qa_config)


def zero_floor_config(qa_config):
    """Floors off: tests of the pure paper algorithm."""
    return qa_config.with_(maintenance_floor=0.0, base_floor=0.0,
                           packet_size=1)


class TestMaintenanceFloor:
    def test_starving_layer_gets_priority(self, policy, qa_config):
        floor = qa_config.floor_bytes
        buffers = [qa_config.base_floor_bytes + 1, floor - 1, floor + 1]
        decision = policy.choose(30_000.0, buffers, 3, 5_000.0)
        assert decision.maintenance
        assert decision.layer == 1

    def test_base_floor_is_larger(self, policy, qa_config):
        # The base is protected up to base_floor_bytes, above the plain
        # floor of middle layers.
        buffers = [qa_config.base_floor_bytes - 1,
                   qa_config.floor_bytes + 1,
                   qa_config.floor_bytes + 1]
        decision = policy.choose(30_000.0, buffers, 3, 5_000.0)
        assert decision.maintenance
        assert decision.layer == 0

    def test_most_depleted_first(self, policy, qa_config):
        buffers = [10.0, 20.0, 5000.0]
        decision = policy.choose(30_000.0, buffers, 3, 5_000.0)
        assert decision.maintenance
        assert decision.layer == 0

    def test_top_layer_floor_is_one_packet(self, qa_config):
        cfg = qa_config.with_(maintenance_floor=2.0)  # 10_000 bytes
        policy = FillingPolicy(cfg)
        # Top layer holds 2 packets: above its one-packet floor even
        # though far below the big maintenance floor.
        buffers = [cfg.base_floor_bytes + 1, cfg.floor_bytes + 1,
                   2.0 * cfg.packet_size]
        decision = policy.choose(60_000.0, buffers, 3, 5_000.0)
        assert not (decision.maintenance and decision.layer == 2)

    def test_needs_floor_flags_disable_maintenance(self, policy,
                                                   qa_config):
        buffers = [0.0, 0.0, 0.0]
        decision = policy.choose(30_000.0, buffers, 3, 5_000.0,
                                 needs_floor=[False] * 3)
        assert not decision.maintenance

    def test_safety_levels_used_for_floor(self, policy, qa_config):
        # Estimates look fine but safety says the base is empty.
        fine = [qa_config.base_floor_bytes * 2] * 3
        decision = policy.choose(30_000.0, fine, 3, 5_000.0,
                                 safety_levels=[0.0, fine[1], fine[2]])
        assert decision.maintenance
        assert decision.layer == 0


class TestTargetFilling:
    def test_fills_base_first_from_empty(self, qa_config):
        cfg = zero_floor_config(qa_config)
        policy = FillingPolicy(cfg)
        decision = policy.choose(12_000.0, [0.0, 0.0], 2, 5_000.0,
                                 needs_floor=[False, False])
        assert decision.layer == 0
        assert decision.working_scenario == SCENARIO_ONE

    def test_returns_none_when_everything_met(self, qa_config):
        cfg = zero_floor_config(qa_config)
        policy = FillingPolicy(cfg)
        decision = policy.choose(12_000.0, [1e9, 1e9], 2, 5_000.0,
                                 needs_floor=[False, False])
        assert decision.layer is None

    def test_working_state_label(self):
        d = FillingDecision(0, 1, 2, SCENARIO_ONE)
        assert d.working_state == "S1k1"
        d = FillingDecision(0, 1, 2, SCENARIO_TWO)
        assert d.working_state == "S2k2"

    def test_s1_k_capped_at_k_max_plus_one(self, qa_config):
        cfg = zero_floor_config(qa_config)
        policy = FillingPolicy(cfg)
        decision = policy.choose(12_000.0, [1e9, 1e9], 2, 5_000.0,
                                 needs_floor=[False, False])
        assert decision.s1_k == cfg.k_max + 1

    @given(rate_factor=st.floats(min_value=1.05, max_value=2.5),
           na=st.integers(min_value=2, max_value=4),
           slope=st.floats(min_value=1_000, max_value=50_000),
           fills=st.lists(st.floats(min_value=0, max_value=20_000),
                          min_size=4, max_size=4))
    @settings(max_examples=100, deadline=None)
    def test_scenario2_clamp_property(self, rate_factor, na, slope,
                                      fills):
        """Any layer chosen while working toward a scenario-2 state with
        scenario 1 still pending must be below its pending scenario-1
        share (the 'no more than the next scenario 1 state' clamp)."""
        cfg = QAConfig(layer_rate=5_000.0, max_layers=4, k_max=2,
                       packet_size=1, maintenance_floor=0.0,
                       base_floor=0.0)
        policy = FillingPolicy(cfg)
        rate = rate_factor * na * cfg.layer_rate
        buffers = fills[:na]
        decision = policy.choose(rate, buffers, na, slope,
                                 needs_floor=[False] * na)
        if (decision.layer is not None
                and decision.working_scenario == SCENARIO_TWO
                and decision.s1_k <= cfg.k_max):
            shares1 = formulas.scenario_shares(
                rate, cfg.layer_rate, na, slope, decision.s1_k,
                SCENARIO_ONE)
            shares2 = formulas.scenario_shares(
                rate, cfg.layer_rate, na, slope, decision.s2_k,
                SCENARIO_TWO)
            clamped = FillingPolicy._clamp_shares(shares2, shares1)
            # Redistribution preserves the total requirement...
            assert sum(clamped) == pytest.approx(sum(shares2))
            # ...and the chosen layer is genuinely below its clamped
            # target.
            assert buffers[decision.layer] < clamped[decision.layer]


class TestConvergenceProperty:
    @given(rate_factor=st.floats(min_value=1.05, max_value=3.0),
           na=st.integers(min_value=1, max_value=4),
           slope=st.floats(min_value=1_000, max_value=50_000))
    @settings(max_examples=60, deadline=None)
    def test_greedy_filling_reaches_final_targets(self, rate_factor, na,
                                                  slope):
        """Repeatedly granting the chosen layer a quantum of data must
        terminate with every K_max target met (the monotone path is
        climbable) and never overshoot the final targets by more than a
        quantum."""
        cfg = QAConfig(layer_rate=5_000.0, max_layers=4, k_max=2,
                       packet_size=1, maintenance_floor=0.0,
                       base_floor=0.0)
        policy = FillingPolicy(cfg)
        rate = rate_factor * na * cfg.layer_rate
        buffers = [0.0] * na
        quantum = 200.0
        targets = StateSequence(rate, cfg.layer_rate, na, slope,
                                cfg.k_max).final_targets
        for _ in range(100_000):
            decision = policy.choose(rate, buffers, na, slope,
                                     needs_floor=[False] * na)
            if decision.layer is None:
                break
            # The chosen layer must be below the final monotone target
            # plus the scenario-2 ladder headroom; at minimum it must be
            # a valid layer.
            assert 0 <= decision.layer < na
            buffers[decision.layer] += quantum
            if sum(buffers) > sum(targets) * 3 + 10 * quantum:
                break  # scenario-2 ladder keeps going; that's fine
        # All K_max targets are met (to quantum granularity).
        for held, target in zip(buffers, targets):
            assert held >= target - quantum - 1e-6
        position = StateSequence(rate, cfg.layer_rate, na, slope,
                                 cfg.k_max).position(
            [b + quantum for b in buffers])
        assert position >= 0
