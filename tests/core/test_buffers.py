"""Unit and property tests for per-layer buffer accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.buffers import LayerBufferSet


@pytest.fixture
def buffers():
    return LayerBufferSet(layer_rate=1000.0, max_layers=4)


class TestLifecycle:
    def test_validation(self):
        with pytest.raises(ValueError):
            LayerBufferSet(0.0, 4)
        with pytest.raises(ValueError):
            LayerBufferSet(1000.0, 0)

    def test_activate_and_query(self, buffers):
        buffers.activate(0, now=0.0)
        assert buffers.is_active(0)
        assert not buffers.is_active(1)

    def test_double_activate_rejected(self, buffers):
        buffers.activate(0, 0.0)
        with pytest.raises(ValueError):
            buffers.activate(0, 1.0)

    def test_deactivate_returns_remaining(self, buffers):
        buffers.activate(2, 0.0)
        buffers.deliver(2, 500)
        assert buffers.deactivate(2) == 500
        assert not buffers.is_active(2)

    def test_deactivate_inactive_rejected(self, buffers):
        with pytest.raises(ValueError):
            buffers.deactivate(1)

    def test_reactivation_starts_clean(self, buffers):
        buffers.activate(1, 0.0)
        buffers.deliver(1, 500)
        buffers.deactivate(1)
        buffers.activate(1, 5.0)
        assert buffers.level(1) == 0.0


class TestDelivery:
    def test_deliver_accumulates(self, buffers):
        buffers.activate(0, 0.0)
        buffers.deliver(0, 300)
        buffers.deliver(0, 200)
        assert buffers.level(0) == 500

    def test_deliver_to_inactive_is_ignored(self, buffers):
        buffers.deliver(0, 300)
        assert buffers.level(0) == 0.0

    def test_negative_delivery_rejected(self, buffers):
        buffers.activate(0, 0.0)
        with pytest.raises(ValueError):
            buffers.deliver(0, -1)

    def test_withdraw(self, buffers):
        buffers.activate(0, 0.0)
        buffers.deliver(0, 1000)
        buffers.withdraw(0, 400)
        assert buffers.level(0) == 600

    def test_withdraw_can_go_negative_but_level_clamps(self, buffers):
        buffers.activate(0, 0.0)
        buffers.deliver(0, 100)
        buffers.withdraw(0, 500)
        assert buffers.level(0) == 0.0


class TestConsumption:
    def test_no_consumption_before_start(self, buffers):
        buffers.activate(0, 0.0)
        buffers.deliver(0, 5000)
        buffers.consume_until(3.0)
        assert buffers.level(0) == 5000

    def test_consumes_at_layer_rate(self, buffers):
        buffers.activate(0, 0.0)
        buffers.deliver(0, 5000)
        buffers.start_consuming(0, 0.0)
        buffers.consume_until(2.0)
        assert buffers.level(0) == 3000

    def test_start_consuming_requires_active(self, buffers):
        with pytest.raises(ValueError):
            buffers.start_consuming(0, 0.0)

    def test_shortfall_reported(self, buffers):
        buffers.activate(0, 0.0)
        buffers.deliver(0, 500)
        buffers.start_consuming(0, 0.0)
        shortfalls = buffers.consume_until(1.0)
        assert shortfalls[0] == pytest.approx(500)
        assert buffers.level(0) == 0.0

    def test_no_shortfall_when_covered(self, buffers):
        buffers.activate(0, 0.0)
        buffers.deliver(0, 2000)
        buffers.start_consuming(0, 0.0)
        assert buffers.consume_until(1.0) == {}

    def test_independent_clocks(self, buffers):
        buffers.activate(0, 0.0)
        buffers.activate(1, 0.0)
        buffers.deliver(0, 5000)
        buffers.deliver(1, 5000)
        buffers.start_consuming(0, 0.0)
        buffers.start_consuming(1, 2.0)
        buffers.consume_until(3.0)
        assert buffers.level(0) == 2000  # 3 s of consumption
        assert buffers.level(1) == 4000  # 1 s of consumption

    def test_clock_does_not_go_backwards(self, buffers):
        buffers.activate(0, 0.0)
        buffers.deliver(0, 1000)
        buffers.start_consuming(0, 0.0)
        buffers.consume_until(0.5)
        buffers.consume_until(0.2)  # ignored
        assert buffers.level(0) == 500

    def test_pause_advances_without_draining(self, buffers):
        buffers.activate(0, 0.0)
        buffers.deliver(0, 1000)
        buffers.start_consuming(0, 0.0)
        buffers.pause(5.0)
        assert buffers.level(0) == 1000
        buffers.consume_until(5.5)
        assert buffers.level(0) == 500


class TestAggregates:
    def test_levels_and_total(self, buffers):
        for i in range(3):
            buffers.activate(i, 0.0)
            buffers.deliver(i, 100 * (i + 1))
        assert buffers.levels(3) == [100, 200, 300]
        assert buffers.total(3) == 600
        assert buffers.total() == 600

    def test_delivered_and_consumed_counters(self, buffers):
        buffers.activate(0, 0.0)
        buffers.deliver(0, 1000)
        buffers.start_consuming(0, 0.0)
        buffers.consume_until(0.5)
        assert buffers.delivered(0) == 1000
        assert buffers.consumed(0) == 500


class TestConservation:
    @given(deliveries=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 5000)),
        min_size=1, max_size=50))
    @settings(max_examples=100)
    def test_levels_never_negative_and_conserve_bytes(self, deliveries):
        buffers = LayerBufferSet(1000.0, 4)
        for i in range(4):
            buffers.activate(i, 0.0)
            buffers.start_consuming(i, 0.0)
        now = 0.0
        for layer, nbytes in deliveries:
            buffers.deliver(layer, nbytes)
            now += 0.1
            buffers.consume_until(now)
        for i in range(4):
            assert buffers.level(i) >= 0.0
            assert (buffers.delivered(i)
                    >= buffers.consumed(i) - 1e-6)
