"""Tests for non-linear layer spacing (section 7 future work)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import formulas, nonlinear
from repro.core.formulas import SCENARIO_ONE, SCENARIO_TWO

rate_vectors = st.lists(st.floats(min_value=500, max_value=20_000),
                        min_size=1, max_size=6)
slopes = st.floats(min_value=500, max_value=100_000)


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            nonlinear.validate_rates([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            nonlinear.validate_rates([1000.0, 0.0])

    def test_total_rate(self):
        assert nonlinear.total_rate([1000.0, 500.0]) == 1500.0


class TestMinBufferingLayers:
    def test_prefix_coverage(self):
        assert nonlinear.min_buffering_layers(
            1400.0, [1000.0, 500.0, 250.0]) == 2

    def test_zero_deficit(self):
        assert nonlinear.min_buffering_layers(0.0, [1000.0]) == 0

    def test_excessive_deficit_raises(self):
        with pytest.raises(ValueError):
            nonlinear.min_buffering_layers(1e9, [1000.0])

    def test_matches_linear_when_equal(self):
        deficit = 12_345.0
        rates = [5_000.0] * 4
        assert nonlinear.min_buffering_layers(deficit, rates) == \
            formulas.min_buffering_layers(deficit, 5_000.0)


class TestBandShares:
    def test_linear_case_matches_formulas(self):
        deficit, layer_rate, slope = 12_000.0, 5_000.0, 1_000.0
        linear = formulas.band_shares(deficit, layer_rate, slope)
        general = nonlinear.band_shares(deficit, [layer_rate] * 4, slope)
        for a, b in zip(linear, general):
            assert a == pytest.approx(b)

    def test_padded_with_zeros(self):
        shares = nonlinear.band_shares(4_000.0, [5_000.0] * 3, 1_000.0)
        assert shares[1] == 0.0
        assert shares[2] == 0.0

    def test_fat_base_takes_more(self):
        shares = nonlinear.band_shares(
            6_000.0, [4_000.0, 2_000.0, 1_000.0], 1_000.0)
        assert shares[0] > shares[1] > shares[2] >= 0

    @given(deficit_frac=st.floats(min_value=0.05, max_value=0.99),
           rates=rate_vectors, slope=slopes)
    @settings(max_examples=200)
    def test_shares_sum_to_triangle(self, deficit_frac, rates, slope):
        deficit = deficit_frac * math.fsum(rates)
        shares = nonlinear.band_shares(deficit, rates, slope)
        assert math.fsum(shares) == pytest.approx(
            formulas.triangle_area(deficit, slope), rel=1e-9)

    @given(deficit_frac=st.floats(min_value=0.05, max_value=0.99),
           rates=rate_vectors, slope=slopes)
    @settings(max_examples=200)
    def test_band_count_matches_nb(self, deficit_frac, rates, slope):
        deficit = deficit_frac * math.fsum(rates)
        shares = nonlinear.band_shares(deficit, rates, slope)
        nonzero = sum(1 for s in shares if s > 0)
        assert nonzero == nonlinear.min_buffering_layers(deficit, rates)


class TestScenarioShares:
    @given(rates=rate_vectors, slope=slopes,
           k=st.integers(min_value=1, max_value=6),
           scenario=st.sampled_from([SCENARIO_ONE, SCENARIO_TWO]),
           rate_factor=st.floats(min_value=1.05, max_value=4.0))
    @settings(max_examples=200)
    def test_totals_match_linear_formula(self, rates, slope, k, scenario,
                                         rate_factor):
        consumption = math.fsum(rates)
        rate = rate_factor * consumption
        shares = nonlinear.scenario_shares(rate, rates, slope, k,
                                           scenario)
        expected = formulas.scenario_total(rate, consumption, slope, k,
                                           scenario)
        assert math.fsum(shares) == pytest.approx(expected, rel=1e-6,
                                                  abs=1e-6)

    def test_linear_special_case(self):
        rate, layer_rate, na, slope = 30_000.0, 6_500.0, 4, 8_000.0
        linear = formulas.scenario_shares(rate, layer_rate, na, slope, 2,
                                          SCENARIO_TWO)
        general = nonlinear.scenario_shares(rate, [layer_rate] * na,
                                            slope, 2, SCENARIO_TWO)
        for a, b in zip(linear, general):
            assert a == pytest.approx(b)

    def test_rejects_bad_scenario(self):
        with pytest.raises(ValueError):
            nonlinear.scenario_shares(1000.0, [100.0], 100.0, 1, 3)


class TestDropRule:
    def test_base_survives(self):
        kept = nonlinear.layers_to_keep(10.0, 0.0,
                                        [5_000.0, 2_000.0], 1_000.0)
        assert kept == 1

    def test_matches_linear_case(self):
        rates = [5_000.0] * 4
        for buffer_ in (0.0, 1_000.0, 1e6):
            assert nonlinear.layers_to_keep(
                8_000.0, buffer_, rates, 1_000.0) == \
                formulas.layers_to_keep(8_000.0, buffer_, 5_000.0,
                                        1_000.0, 4)

    def test_thin_top_layers_dropped_first(self):
        # Dropping a thin enhancement barely reduces consumption; the
        # rule keeps dropping until the deficit is coverable.
        rates = [8_000.0, 1_000.0, 1_000.0, 1_000.0]
        kept = nonlinear.layers_to_keep(7_000.0, 100.0, rates, 1_000.0)
        assert kept == 1


class TestGeometricLadder:
    def test_ratio_shapes_rates(self):
        rates = nonlinear.geometric_rates(8_000.0, 3, ratio=0.5)
        assert rates == (8_000.0, 4_000.0, 2_000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            nonlinear.geometric_rates(0.0, 3)
        with pytest.raises(ValueError):
            nonlinear.geometric_rates(1000.0, 0)
        with pytest.raises(ValueError):
            nonlinear.geometric_rates(1000.0, 3, ratio=0.0)

    def test_equivalent_linear_rate(self):
        assert nonlinear.equivalent_linear_rate(
            [8_000.0, 4_000.0]) == 6_000.0
