"""Property-based invariants for buffer accounting and the drop rule.

Complements tests/core/test_properties.py (whole-mechanism stateful
fuzz) with targeted algebraic properties of ``core/buffers.py`` and
``core/add_drop.py``:

- byte conservation: whatever interleaving of fills and drains, the
  buffered total is exactly delivered-minus-consumed, and every drained
  byte is either consumed or reported as shortfall;
- the section 2.2 drop rule ``(na*C - R) >= sqrt(2*S*buf)``: the
  surviving layer set can always cover its remaining deficit triangle
  from the available buffering — no layer is left to run negative — and
  it never drops more layers than that requires.

Skipped wholesale when hypothesis is not installed.
"""

from __future__ import annotations

import math

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core import formulas  # noqa: E402
from repro.core.add_drop import AddDropPolicy  # noqa: E402
from repro.core.buffers import LayerBufferSet  # noqa: E402
from repro.core.config import QAConfig  # noqa: E402

# One buffer operation: (kind, layer, amount).
_ops = st.lists(
    st.tuples(
        st.sampled_from(["deliver", "advance"]),
        st.integers(0, 3),
        st.floats(min_value=0.0, max_value=5_000.0,
                  allow_nan=False, allow_infinity=False),
    ),
    max_size=40,
)


class TestByteConservation:
    @given(ops=_ops, layer_rate=st.floats(min_value=100.0,
                                          max_value=10_000.0))
    @settings(max_examples=60, deadline=None)
    def test_total_is_delivered_minus_consumed(self, ops, layer_rate):
        buffers = LayerBufferSet(layer_rate=layer_rate, max_layers=4)
        now = 0.0
        for layer in range(4):
            buffers.activate(layer, now)
            buffers.start_consuming(layer, now)
        shortfall_total = 0.0
        for kind, layer, amount in ops:
            if kind == "deliver":
                buffers.deliver(layer, amount)
            else:
                dt = amount / 5_000.0  # up to one second per step
                now += dt
                shortfalls = buffers.consume_until(now)
                assert all(s > 0 for s in shortfalls.values())
                shortfall_total += math.fsum(shortfalls.values())

        delivered = math.fsum(buffers.delivered(i) for i in range(4))
        consumed = math.fsum(buffers.consumed(i) for i in range(4))
        # Conservation: nothing appears or vanishes inside the buffers.
        assert buffers.total() == pytest.approx(delivered - consumed,
                                                abs=1e-6)
        # Every byte the clocks wanted was either consumed or reported
        # as shortfall: wanted = 4 * C * elapsed time.
        wanted = 4 * layer_rate * now
        assert consumed + shortfall_total == pytest.approx(wanted,
                                                           rel=1e-9,
                                                           abs=1e-6)
        for i in range(4):
            assert buffers.level(i) >= 0.0

    @given(
        layer=st.integers(0, 3),
        amounts=st.lists(st.floats(min_value=0.0, max_value=1e4),
                         max_size=10),
        dt=st.floats(min_value=0.0, max_value=10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_deactivate_returns_exact_remainder(self, layer, amounts, dt):
        buffers = LayerBufferSet(layer_rate=1_000.0, max_layers=4)
        buffers.activate(layer, 0.0)
        buffers.start_consuming(layer, 0.0)
        for amount in amounts:
            buffers.deliver(layer, amount)
        buffers.consume_until(dt)
        level = buffers.level(layer)
        assert buffers.deactivate(layer) == pytest.approx(level)
        assert buffers.total() == 0.0


_drop_args = {
    "rate": st.floats(min_value=100.0, max_value=60_000.0),
    "total_buffer": st.floats(min_value=0.0, max_value=50_000.0),
    "layer_rate": st.floats(min_value=500.0, max_value=10_000.0),
    "slope": st.floats(min_value=100.0, max_value=10_000.0),
    "active_layers": st.integers(min_value=1, max_value=8),
}


class TestDropRule:
    @given(**_drop_args)
    @settings(max_examples=200, deadline=None)
    def test_survivors_can_drain_without_going_negative(
            self, rate, total_buffer, layer_rate, slope, active_layers):
        """After the rule runs, the remaining deficit triangle fits in
        the available buffering (except the undroppable base layer), so
        the fluid drain never pulls any layer below zero."""
        keep = formulas.layers_to_keep(
            rate, total_buffer, layer_rate, slope, active_layers)
        assert 1 <= keep <= active_layers
        deficit = keep * layer_rate - rate
        if keep > 1:
            # Loop exit condition: deficit < sqrt(2*S*buf)  <=>  the
            # triangle the buffers must cover is within what they hold.
            assert formulas.triangle_area(deficit, slope) <= \
                total_buffer + 1e-6
        if keep < active_layers:
            # Dropping was necessary: one more layer would have demanded
            # more buffering than exists.
            over = (keep + 1) * layer_rate - rate
            assert formulas.triangle_area(over, slope) >= \
                total_buffer - 1e-6

    @given(**_drop_args)
    @settings(max_examples=100, deadline=None)
    def test_more_buffering_never_drops_more(
            self, rate, total_buffer, layer_rate, slope, active_layers):
        keep = formulas.layers_to_keep(
            rate, total_buffer, layer_rate, slope, active_layers)
        keep_richer = formulas.layers_to_keep(
            rate, 2.0 * total_buffer + 1_000.0, layer_rate, slope,
            active_layers)
        assert keep_richer >= keep

    @given(**_drop_args)
    @settings(max_examples=100, deadline=None)
    def test_policy_wrapper_matches_formula(
            self, rate, total_buffer, layer_rate, slope, active_layers):
        policy = AddDropPolicy(QAConfig(
            layer_rate=layer_rate, max_layers=max(active_layers, 2),
            k_max=2, packet_size=500))
        assert policy.layers_after_drop_rule(
            rate, total_buffer, active_layers, slope) == \
            formulas.layers_to_keep(rate, total_buffer, layer_rate,
                                    slope, active_layers)

    @given(
        rate=st.floats(min_value=100.0, max_value=60_000.0),
        slope=st.floats(min_value=100.0, max_value=10_000.0),
        buffers=st.lists(st.floats(min_value=0.0, max_value=20_000.0),
                         min_size=4, max_size=4),
    )
    @settings(max_examples=100, deadline=None)
    def test_never_adds_beyond_max_layers(self, rate, slope, buffers):
        config = QAConfig(layer_rate=2_000.0, max_layers=4, k_max=2,
                          packet_size=500)
        policy = AddDropPolicy(config)
        assert policy.can_add(rate, rate, 4, buffers, slope) is False
