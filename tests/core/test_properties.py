"""System-level property tests: invariants under random environments.

These drive the *whole* adaptation mechanism (via the fluid model and a
stateful buffer machine) with hypothesis-generated scenarios and assert
the invariants that must hold for any input -- the strongest form of the
paper's "no assumptions about loss patterns" claim this repo can check.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.core.buffers import LayerBufferSet
from repro.core.config import QAConfig
from repro.core.fluid import FluidRun, ScriptedAimd


class TestFluidInvariants:
    @given(
        backoffs=st.lists(
            st.floats(min_value=2.0, max_value=28.0),
            max_size=6, unique=True),
        slope=st.floats(min_value=500, max_value=4_000),
        k_max=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_backoff_scripts(self, backoffs, slope, k_max):
        """For ANY backoff pattern: the base layer survives, layer
        counts stay within bounds, buffers never go negative, and the
        oracle receiver never stalls."""
        config = QAConfig(layer_rate=3_000.0, max_layers=4, k_max=k_max,
                          packet_size=150, startup_delay=0.5)
        bandwidth = ScriptedAimd(
            initial_rate=4_000.0, slope=slope,
            backoff_times=sorted(backoffs),
            max_rate=14_000.0)
        result = FluidRun(config, bandwidth, duration=30.0).run()
        adapter = result.adapter
        tracer = result.tracer

        assert 1 <= adapter.active_layers <= 4
        layers = tracer.get("layers")
        assert layers.min() >= 1
        assert layers.max() <= 4
        for i in range(4):
            assert tracer.get(f"buffer_L{i}").min() >= 0.0
        assert adapter.metrics.stall_count == 0
        # Accounting: delivered never less than consumed per layer.
        for i in range(adapter.active_layers):
            assert adapter.buffers.delivered(i) >= \
                adapter.buffers.consumed(i) - 1e-6
        # Every drop event is well formed.
        for event in adapter.metrics.drops:
            assert event.buf_drop <= event.buf_total + 1e-6
            assert 0.0 <= event.efficiency <= 1.0


class BufferMachine(RuleBasedStateMachine):
    """Stateful fuzz of LayerBufferSet: any operation order keeps the
    accounting consistent."""

    def __init__(self):
        super().__init__()
        self.buffers = LayerBufferSet(layer_rate=1000.0, max_layers=4)
        self.now = 0.0

    @rule(layer=st.integers(0, 3))
    def activate(self, layer):
        if not self.buffers.is_active(layer):
            self.buffers.activate(layer, self.now)

    @rule(layer=st.integers(0, 3))
    def start_consuming(self, layer):
        if (self.buffers.is_active(layer)
                and not self.buffers.is_consuming(layer)):
            self.buffers.start_consuming(layer, self.now)

    @rule(layer=st.integers(0, 3), nbytes=st.integers(0, 5000))
    def deliver(self, layer, nbytes):
        self.buffers.deliver(layer, nbytes)

    @rule(layer=st.integers(0, 3), nbytes=st.integers(0, 5000))
    def withdraw(self, layer, nbytes):
        self.buffers.withdraw(layer, nbytes)

    @rule(dt=st.floats(min_value=0.0, max_value=2.0))
    def advance(self, dt):
        self.now += dt
        self.buffers.consume_until(self.now)

    @rule(dt=st.floats(min_value=0.0, max_value=2.0))
    def pause(self, dt):
        self.now += dt
        self.buffers.pause(self.now)

    @rule(layer=st.integers(0, 3))
    def deactivate(self, layer):
        if self.buffers.is_active(layer):
            remaining = self.buffers.deactivate(layer)
            assert remaining >= 0.0

    @invariant()
    def levels_never_negative(self):
        for i in range(4):
            assert self.buffers.level(i) >= 0.0

    @invariant()
    def inactive_layers_are_empty(self):
        for i in range(4):
            if not self.buffers.is_active(i):
                assert self.buffers.level(i) == 0.0
                assert not self.buffers.is_consuming(i)

    @invariant()
    def total_matches_sum(self):
        assert self.buffers.total() == pytest.approx(
            sum(self.buffers.level(i) for i in range(4)))


TestBufferMachine = BufferMachine.TestCase
TestBufferMachine.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None)
