"""Tests for the fluid model -- the paper's clean-sawtooth environment."""

import pytest

from repro.core.config import QAConfig
from repro.core.fluid import FluidRun, ScriptedAimd


class TestScriptedAimd:
    def test_linear_climb(self):
        bw = ScriptedAimd(initial_rate=1000.0, slope=500.0)
        assert bw.rate(0.0) == 1000.0
        assert bw.rate(2.0) == 2000.0

    def test_max_rate_cap(self):
        bw = ScriptedAimd(initial_rate=1000.0, slope=1000.0,
                          max_rate=1500.0)
        assert bw.rate(10.0) == 1500.0

    def test_backoff_halves(self):
        bw = ScriptedAimd(initial_rate=1000.0, slope=500.0)
        new = bw.apply_backoff(2.0)  # rate was 2000
        assert new == 1000.0
        assert bw.rate(2.0) == 1000.0
        assert bw.rate(3.0) == 1500.0

    def test_min_rate_floor(self):
        bw = ScriptedAimd(initial_rate=300.0, slope=1.0, min_rate=200.0)
        assert bw.apply_backoff(0.0) == 200.0

    def test_backoffs_until_consumes(self):
        bw = ScriptedAimd(1000.0, 500.0, backoff_times=(1.0, 2.0, 3.0))
        assert bw.backoffs_until(2.5) == [1.0, 2.0]
        assert bw.backoffs_until(2.5) == []
        assert bw.backoffs_until(3.5) == [3.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            ScriptedAimd(0.0, 1.0)


class TestFluidRun:
    def make_run(self, **overrides):
        params = dict(layer_rate=4000.0, max_layers=3, k_max=2,
                      packet_size=200, startup_delay=0.5)
        params.update(overrides)
        config = QAConfig(**params)
        bandwidth = ScriptedAimd(
            initial_rate=5000.0, slope=1500.0,
            backoff_times=(12.0,), max_rate=14_000.0)
        return FluidRun(config, bandwidth, duration=20.0)

    def test_rejects_bad_duration(self):
        config = QAConfig(layer_rate=1000.0)
        with pytest.raises(ValueError):
            FluidRun(config, ScriptedAimd(1000.0, 100.0), duration=0.0)

    def test_run_produces_traces(self):
        result = self.make_run().run()
        assert len(result.tracer.get("rate")) > 100
        assert len(result.tracer.get("buffer_L0")) > 100

    def test_oracle_feedback_forced(self):
        run = self.make_run()
        assert run.config.feedback == "oracle"

    def test_layers_climb_with_bandwidth(self):
        result = self.make_run().run()
        assert result.adapter.active_layers >= 2

    def test_no_stalls_in_clean_conditions(self):
        result = self.make_run().run()
        assert result.metrics.stall_count == 0

    def test_buffers_absorb_the_backoff(self):
        """Around the scripted backoff, total buffering decreases (the
        draining phase) and the consumption rate is maintained."""
        result = self.make_run().run()
        total = result.tracer.get("total_buffer")
        before = total.value_at(11.9)
        trough = min(total.window(12.0, 16.0).values)
        assert trough < before

    def test_base_layer_holds_most_buffering(self):
        result = self.make_run().run()
        t = result.tracer
        assert t.get("buffer_L0").mean() >= t.get("buffer_L2").mean()

    def test_sequential_filling_order(self):
        """The base layer reaches a meaningful buffer level before the
        top layer starts accumulating one (Figure 5's signature)."""
        result = self.make_run().run()
        t = result.tracer
        top = t.get("buffer_L2")
        first_top_fill = None
        for time, value in top:
            if value > 400:  # two packets
                first_top_fill = time
                break
        if first_top_fill is not None:
            base_then = t.get("buffer_L0").value_at(first_top_fill)
            assert base_then > 400
