"""Tests for selective base-layer retransmission (section 1.3)."""

import pytest

from repro.core.config import QAConfig
from repro.core.metrics import DropCause

from tests.core.test_adapter import Harness


def make_harness(retransmit_layers=1, **overrides):
    params = dict(layer_rate=5_000.0, max_layers=4, k_max=2,
                  packet_size=500, startup_delay=0.5,
                  retransmit_layers=retransmit_layers)
    params.update(overrides)
    return Harness(QAConfig(**params))


class TestConfig:
    def test_disabled_by_default(self):
        assert QAConfig().retransmit_layers == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            QAConfig(retransmit_layers=-1)


class TestRetransmission:
    def test_lost_base_packet_is_resent_first(self):
        h = make_harness()
        h.send_packets(4)
        h.adapter.on_lost(0, 500)
        layers = h.send_packets(1)
        assert layers == [0]
        assert h.adapter.retransmitted_bytes == 500

    def test_debt_accumulates_across_losses(self):
        h = make_harness()
        h.send_packets(6)
        for _ in range(3):
            h.adapter.on_lost(0, 500)
        layers = h.send_packets(3)
        assert layers == [0, 0, 0]
        assert h.adapter.retransmitted_bytes == 1500

    def test_unprotected_layer_losses_not_resent(self):
        h = make_harness(retransmit_layers=1)
        h.drive(5.0)  # grow to several layers
        assert h.adapter.active_layers >= 2
        before = h.adapter.retransmitted_bytes
        h.adapter.on_lost(1, 500)
        h.send_packets(1)
        assert h.adapter.retransmitted_bytes == before

    def test_disabled_means_no_retransmissions(self):
        h = make_harness(retransmit_layers=0)
        h.send_packets(4)
        h.adapter.on_lost(0, 500)
        h.send_packets(5)
        assert h.adapter.retransmitted_bytes == 0

    def test_sub_packet_debt_waits(self):
        h = make_harness()
        h.send_packets(2)
        h.adapter.on_lost(0, 200)  # less than a packet
        layers_before = h.adapter.retransmitted_bytes
        h.send_packets(1)
        assert h.adapter.retransmitted_bytes == layers_before

    def test_drop_clears_protected_debt(self):
        h = make_harness(retransmit_layers=4)
        h.drive(5.0)
        assert h.adapter.active_layers >= 2
        top = h.adapter.active_layers - 1
        h.adapter.on_lost(top, 500)
        h.adapter._drop_top_layer(DropCause.RULE)
        assert h.adapter._retransmit_debt[top] == 0.0
