"""Focused tests for the adapter's draining-phase behaviour."""

from repro.core.config import QAConfig
from repro.core.metrics import DropCause

from tests.core.test_adapter import Harness


def draining_harness():
    """Grow to several layers at a high rate, then collapse the rate so
    the adapter enters a draining phase."""
    h = Harness(rate=40_000.0)
    h.drive(8.0)
    assert h.adapter.active_layers >= 3
    h.rate = h.adapter.consumption * 0.7
    h.adapter.on_backoff(h.rate)
    return h


class TestDrainingPlanPath:
    def test_plan_is_created_on_demand(self):
        h = draining_harness()
        h.send_packets(1)
        assert h.adapter._plan is not None
        assert h.adapter._quota

    def test_plan_refreshes_each_period(self):
        h = draining_harness()
        h.send_packets(1)
        first = h.adapter._plan
        h.advance(h.config.drain_period * 1.5)
        h.send_packets(1)
        assert h.adapter._plan is not first

    def test_draining_without_backoff_freezes_a_path(self):
        """A slow start below consumption drains with no recorded
        backoff; the adapter freezes a path at the consumption rate."""
        h = Harness(rate=30_000.0)
        h.drive(6.0)
        h.adapter._frozen_rate = None
        h.adapter._sequence = None
        h.rate = h.adapter.consumption * 0.6
        h.send_packets(1)
        assert h.adapter._sequence is not None
        assert (h.adapter._sequence.active_layers
                == h.adapter.active_layers)

    def test_sequence_tracks_layer_count_changes(self):
        h = draining_harness()
        h.send_packets(1)
        before = h.adapter._sequence.active_layers
        h.adapter._drop_top_layer(DropCause.RULE)
        assert h.adapter._sequence.active_layers == before - 1


class TestFlowControlUnit:
    def test_full_layer_idles_the_slot(self):
        cfg = QAConfig(layer_rate=5_000.0, max_layers=2, k_max=2,
                       packet_size=500, startup_delay=0.5,
                       max_buffer_seconds=0.5)
        h = Harness(cfg, rate=40_000.0)
        # Fill the base beyond the 2_500-byte cap.
        for _ in range(10):
            meta = h.adapter.pick_layer(0)
            if meta is None:
                break
            h.adapter.on_delivered(meta["layer"], 500)
        assert h.adapter.buffers.level(0) <= 2_500 + 500
        # Eventually slots go idle.
        idles = sum(1 for _ in range(5)
                    if h.adapter.pick_layer(0) is None)
        assert idles >= 1

    def test_uncapped_never_idles(self):
        h = Harness(rate=40_000.0)
        assert all(h.adapter.pick_layer(i) is not None
                   for i in range(50))
