"""Unit tests for QAConfig validation and helpers."""

import pytest

from repro.core.config import QAConfig


class TestValidation:
    def test_defaults_valid(self):
        QAConfig()

    @pytest.mark.parametrize("field,value", [
        ("layer_rate", 0.0),
        ("layer_rate", -1.0),
        ("max_layers", 0),
        ("k_max", 0),
        ("packet_size", 0),
        ("drain_period", 0.0),
        ("maintenance_floor", -0.1),
        ("base_floor", -0.1),
        ("underflow_debt_packets", 0.0),
    ])
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ValueError):
            QAConfig(**{field: value})

    @pytest.mark.parametrize("field,value", [
        ("add_rule", "magic"),
        ("allocator", "wat"),
        ("feedback", "telepathy"),
    ])
    def test_rejects_unknown_enums(self, field, value):
        with pytest.raises(ValueError):
            QAConfig(**{field: value})

    @pytest.mark.parametrize("rule", QAConfig.VALID_ADD_RULES)
    def test_all_add_rules_accepted(self, rule):
        QAConfig(add_rule=rule)

    @pytest.mark.parametrize("allocator", QAConfig.VALID_ALLOCATORS)
    def test_all_allocators_accepted(self, allocator):
        QAConfig(allocator=allocator)

    @pytest.mark.parametrize("feedback", QAConfig.VALID_FEEDBACK)
    def test_all_feedback_modes_accepted(self, feedback):
        QAConfig(feedback=feedback)


class TestHelpers:
    def test_with_returns_modified_copy(self):
        base = QAConfig(k_max=2)
        changed = base.with_(k_max=5)
        assert changed.k_max == 5
        assert base.k_max == 2

    def test_with_validates(self):
        with pytest.raises(ValueError):
            QAConfig().with_(k_max=0)

    def test_floor_bytes(self):
        cfg = QAConfig(layer_rate=10_000, maintenance_floor=0.25)
        assert cfg.floor_bytes == 2500.0

    def test_base_floor_bytes(self):
        cfg = QAConfig(layer_rate=10_000, base_floor=0.5)
        assert cfg.base_floor_bytes == 5000.0

    def test_consumption(self):
        cfg = QAConfig(layer_rate=10_000)
        assert cfg.consumption(3) == 30_000.0
