"""Focused tests for the scenario-2 clamp redistribution (section 4)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.filling import FillingPolicy

share_vectors = st.lists(st.floats(min_value=0, max_value=50_000),
                         min_size=1, max_size=6)


class TestClampShares:
    def test_no_clamping_when_caps_are_loose(self):
        raw = (100.0, 50.0, 10.0)
        caps = (1000.0, 1000.0, 1000.0)
        assert FillingPolicy._clamp_shares(raw, caps) == raw

    def test_excess_carries_upward(self):
        raw = (100.0, 0.0)
        caps = (60.0, 1000.0)
        clamped = FillingPolicy._clamp_shares(raw, caps)
        assert clamped == (60.0, 40.0)

    def test_cascading_carry(self):
        raw = (100.0, 100.0, 0.0)
        caps = (50.0, 50.0, 1000.0)
        clamped = FillingPolicy._clamp_shares(raw, caps)
        assert clamped == (50.0, 50.0, 100.0)

    def test_leftover_lands_on_top_layer(self):
        raw = (100.0, 100.0)
        caps = (50.0, 50.0)
        clamped = FillingPolicy._clamp_shares(raw, caps)
        assert clamped == (50.0, 150.0)

    def test_empty_vectors(self):
        assert FillingPolicy._clamp_shares((), ()) == ()

    @given(raw=share_vectors, caps=share_vectors)
    @settings(max_examples=200)
    def test_total_preserved(self, raw, caps):
        n = min(len(raw), len(caps))
        raw, caps = raw[:n], caps[:n]
        clamped = FillingPolicy._clamp_shares(raw, caps)
        assert math.fsum(clamped) == pytest.approx(math.fsum(raw),
                                                   rel=1e-9, abs=1e-9)

    @given(raw=share_vectors, caps=share_vectors)
    @settings(max_examples=200)
    def test_caps_respected_below_top(self, raw, caps):
        n = min(len(raw), len(caps))
        raw, caps = raw[:n], caps[:n]
        clamped = FillingPolicy._clamp_shares(raw, caps)
        for value, cap in zip(clamped[:-1], caps[:-1]):
            assert value <= cap + 1e-9
