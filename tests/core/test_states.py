"""Unit and property tests for the buffer-state sequence (Figures 8-10)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.states import BufferState, StateSequence

rates = st.floats(min_value=5_000, max_value=200_000)
layer_rates = st.floats(min_value=1_000, max_value=20_000)
slopes = st.floats(min_value=500, max_value=100_000)
layer_counts = st.integers(min_value=1, max_value=6)
k_maxes = st.integers(min_value=1, max_value=6)


def make(rate=30_000, layer_rate=6_500, na=4, slope=8_000, k_max=5):
    return StateSequence(rate, layer_rate, na, slope, k_max)


class TestConstruction:
    def test_rejects_bad_k_max(self):
        with pytest.raises(ValueError):
            make(k_max=0)

    def test_rejects_bad_layers(self):
        with pytest.raises(ValueError):
            make(na=0)

    def test_contains_scenario1_for_every_k(self):
        seq = make(k_max=5)
        s1_ks = {s.k for s in seq if s.scenario == 1}
        assert s1_ks == {1, 2, 3, 4, 5}

    def test_scenario2_dedup_below_k1(self):
        # With rate < 2 * consumption, k1 == 1, so S2k1 duplicates S1k1
        # and is omitted.
        seq = make(rate=30_000, layer_rate=6_500, na=4)
        assert not any(s.scenario == 2 and s.k == 1 for s in seq)

    def test_indexing_and_iteration(self):
        seq = make()
        assert len(seq) > 0
        assert isinstance(seq[0], BufferState)
        assert list(seq)[0] is seq[0]

    def test_labels(self):
        assert BufferState(1, 3, 0.0, ()).label() == "S1k3"


class TestOrdering:
    @given(rate=rates, layer_rate=layer_rates, na=layer_counts,
           slope=slopes, k_max=k_maxes)
    @settings(max_examples=150)
    def test_totals_sorted_ascending(self, rate, layer_rate, na, slope,
                                     k_max):
        seq = StateSequence(rate, layer_rate, na, slope, k_max)
        totals = [s.total for s in seq]
        assert totals == sorted(totals)

    def test_paper_example_interleaves_scenarios(self):
        # The canonical parameters reproduce the Figure 9 flavour:
        # S2k2 needs less than S1k2, S2k4 more than S1k4.
        seq = make()
        labels = [s.label() for s in seq]
        assert labels.index("S2k2") < labels.index("S1k2")
        assert labels.index("S1k4") < labels.index("S2k4")


class TestMonotonicity:
    @given(rate=rates, layer_rate=layer_rates, na=layer_counts,
           slope=slopes, k_max=k_maxes)
    @settings(max_examples=150)
    def test_effective_shares_never_decrease(self, rate, layer_rate, na,
                                             slope, k_max):
        seq = StateSequence(rate, layer_rate, na, slope, k_max)
        previous = [0.0] * na
        for state in seq:
            for prev, cur in zip(previous, state.effective_shares):
                assert cur >= prev - 1e-9
            previous = list(state.effective_shares)

    @given(rate=rates, layer_rate=layer_rates, na=layer_counts,
           slope=slopes, k_max=k_maxes)
    @settings(max_examples=150)
    def test_effective_dominates_raw(self, rate, layer_rate, na, slope,
                                     k_max):
        seq = StateSequence(rate, layer_rate, na, slope, k_max)
        for state in seq:
            for raw, eff in zip(state.shares, state.effective_shares):
                assert eff >= raw - 1e-9

    def test_effective_total_at_least_raw_total(self):
        for state in make():
            assert state.effective_total >= state.total - 1e-9


class TestQueries:
    def test_final_targets_are_last_state(self):
        seq = make()
        assert seq.final_targets == seq[-1].effective_shares

    def test_position_empty_buffers(self):
        seq = make()
        assert seq.position([0.0] * 4) == -1

    def test_position_full_buffers(self):
        seq = make()
        full = [x + 1 for x in seq.final_targets]
        assert seq.position(full) == len(seq) - 1

    def test_position_partial(self):
        seq = make()
        first = list(seq[0].effective_shares)
        assert seq.position(first) >= 0
        assert seq.position(first) < len(seq) - 1

    def test_survivable_position_uses_totals(self):
        seq = make()
        assert seq.survivable_position(0.0) == -1
        assert seq.survivable_position(seq[0].total + 1) >= 0
        assert seq.survivable_position(1e12) == len(seq) - 1

    @given(rate=rates, layer_rate=layer_rates, na=layer_counts,
           slope=slopes, k_max=k_maxes,
           budget=st.floats(min_value=0, max_value=1e7))
    @settings(max_examples=100)
    def test_survivable_position_definition(self, rate, layer_rate, na,
                                            slope, k_max, budget):
        seq = StateSequence(rate, layer_rate, na, slope, k_max)
        pos = seq.survivable_position(budget)
        if pos >= 0:
            assert seq[pos].total <= budget + 1e-6
        if pos + 1 < len(seq):
            assert seq[pos + 1].total > budget - 1e-6
