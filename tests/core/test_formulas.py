"""Unit and property tests for the Appendix-A formulas."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import formulas
from repro.core.formulas import SCENARIO_ONE, SCENARIO_TWO

# Strategy corners: rates and consumptions in bytes/s, slopes in
# bytes/s^2, all within physically sensible ranges.
rates = st.floats(min_value=1_000, max_value=1_000_000)
layer_rates = st.floats(min_value=500, max_value=50_000)
slopes = st.floats(min_value=100, max_value=1_000_000)
layer_counts = st.integers(min_value=1, max_value=10)
ks = st.integers(min_value=1, max_value=8)


class TestTriangleArea:
    def test_basic_value(self):
        # deficit 1000 B/s closing at 500 B/s^2 -> 2 s -> 1000 B area
        assert formulas.triangle_area(1000, 500) == pytest.approx(1000.0)

    def test_zero_deficit(self):
        assert formulas.triangle_area(0.0, 100.0) == 0.0

    def test_negative_deficit(self):
        assert formulas.triangle_area(-5.0, 100.0) == 0.0

    def test_requires_positive_slope(self):
        with pytest.raises(ValueError):
            formulas.triangle_area(10.0, 0.0)

    @given(deficit=st.floats(min_value=0, max_value=1e6), slope=slopes)
    def test_non_negative(self, deficit, slope):
        assert formulas.triangle_area(deficit, slope) >= 0.0

    @given(deficit=st.floats(min_value=1, max_value=1e5), slope=slopes)
    def test_quadratic_scaling(self, deficit, slope):
        one = formulas.triangle_area(deficit, slope)
        four = formulas.triangle_area(2 * deficit, slope)
        assert four == pytest.approx(4 * one, rel=1e-9)


class TestDeficit:
    def test_halving(self):
        assert formulas.deficit_after_backoffs(8000, 6000, 1) == 2000
        assert formulas.deficit_after_backoffs(8000, 6000, 2) == 4000

    def test_k_zero(self):
        assert formulas.deficit_after_backoffs(8000, 6000, 0) == -2000

    def test_rejects_negative_k(self):
        with pytest.raises(ValueError):
            formulas.deficit_after_backoffs(1, 1, -1)


class TestMinBufferingLayers:
    def test_exact_multiples(self):
        assert formulas.min_buffering_layers(10_000, 5_000) == 2

    def test_rounds_up(self):
        assert formulas.min_buffering_layers(10_001, 5_000) == 3

    def test_zero_deficit(self):
        assert formulas.min_buffering_layers(0.0, 5_000) == 0

    def test_requires_positive_layer_rate(self):
        with pytest.raises(ValueError):
            formulas.min_buffering_layers(1.0, 0.0)

    @given(deficit=st.floats(min_value=0.1, max_value=1e6),
           layer_rate=layer_rates)
    def test_covers_deficit(self, deficit, layer_rate):
        nb = formulas.min_buffering_layers(deficit, layer_rate)
        assert nb * layer_rate >= deficit - 1e-6


class TestBandShares:
    def test_single_band(self):
        shares = formulas.band_shares(4000, 5000, 1000)
        assert len(shares) == 1
        assert shares[0] == pytest.approx(
            formulas.triangle_area(4000, 1000))

    def test_base_gets_the_biggest_band(self):
        shares = formulas.band_shares(12_000, 5_000, 1000)
        assert len(shares) == 3
        assert shares[0] > shares[1] > shares[2]

    def test_empty_when_no_deficit(self):
        assert formulas.band_shares(0.0, 5000, 1000) == ()

    @given(deficit=st.floats(min_value=1, max_value=2e5),
           layer_rate=layer_rates, slope=slopes)
    @settings(max_examples=200)
    def test_shares_sum_to_triangle(self, deficit, layer_rate, slope):
        shares = formulas.band_shares(deficit, layer_rate, slope)
        assert math.fsum(shares) == pytest.approx(
            formulas.triangle_area(deficit, slope), rel=1e-9)

    @given(deficit=st.floats(min_value=1, max_value=2e5),
           layer_rate=layer_rates, slope=slopes)
    @settings(max_examples=200)
    def test_shares_decrease_with_layer(self, deficit, layer_rate, slope):
        shares = formulas.band_shares(deficit, layer_rate, slope)
        for lower, higher in zip(shares, shares[1:]):
            assert lower >= higher - 1e-9

    @given(deficit=st.floats(min_value=1, max_value=2e5),
           layer_rate=layer_rates, slope=slopes)
    def test_band_count_matches_nb(self, deficit, layer_rate, slope):
        shares = formulas.band_shares(deficit, layer_rate, slope)
        assert len(shares) == formulas.min_buffering_layers(
            deficit, layer_rate)


class TestDropRule:
    def test_keeps_all_when_buffering_plentiful(self):
        kept = formulas.layers_to_keep(
            rate=10_000, total_buffer=1e9, layer_rate=5_000, slope=1000,
            active_layers=4)
        assert kept == 4

    def test_drops_everything_but_base_when_empty(self):
        kept = formulas.layers_to_keep(
            rate=1_000, total_buffer=0.0, layer_rate=5_000, slope=1000,
            active_layers=4)
        assert kept == 1

    def test_base_never_dropped(self):
        kept = formulas.layers_to_keep(
            rate=1, total_buffer=0.0, layer_rate=50_000, slope=1,
            active_layers=1)
        assert kept == 1

    def test_threshold_matches_triangle(self):
        # With buffer exactly equal to the recovery triangle, the layer
        # survives (>= comparison drops only when strictly insufficient).
        rate, layer_rate, slope, na = 10_000, 5_000, 1_000, 4
        required = formulas.draining_recovery_requirement(
            rate, na * layer_rate, slope)
        kept = formulas.layers_to_keep(rate, required + 1.0, layer_rate,
                                       slope, na)
        assert kept == 4
        kept = formulas.layers_to_keep(rate, required * 0.5, layer_rate,
                                       slope, na)
        assert kept < 4

    @given(rate=rates, layer_rate=layer_rates, slope=slopes,
           na=layer_counts,
           buffer_=st.floats(min_value=0, max_value=1e7))
    @settings(max_examples=200)
    def test_result_in_valid_range(self, rate, layer_rate, slope, na,
                                   buffer_):
        kept = formulas.layers_to_keep(rate, buffer_, layer_rate, slope,
                                       na)
        assert 1 <= kept <= na

    @given(rate=rates, layer_rate=layer_rates, slope=slopes,
           na=layer_counts)
    def test_monotone_in_buffering(self, rate, layer_rate, slope, na):
        low = formulas.layers_to_keep(rate, 100.0, layer_rate, slope, na)
        high = formulas.layers_to_keep(rate, 1e7, layer_rate, slope, na)
        assert high >= low


class TestK1:
    def test_simple_case(self):
        # 30000 halves below 19500 after one backoff.
        assert formulas.k1_backoffs(30_000, 19_500) == 1

    def test_deep_case(self):
        # 100000 -> 50000 -> 25000 -> 12500 < 13000: three backoffs.
        assert formulas.k1_backoffs(100_000, 13_000) == 3

    def test_rate_already_below(self):
        assert formulas.k1_backoffs(5_000, 10_000) == 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            formulas.k1_backoffs(0, 1)

    @given(rate=rates, consumption=rates)
    def test_definition(self, rate, consumption):
        k1 = formulas.k1_backoffs(rate, consumption)
        assert rate / 2 ** k1 < consumption + 1e-6
        if k1 > 1:
            assert rate / 2 ** (k1 - 1) >= consumption - 1e-6


class TestScenarioTotals:
    def test_scenarios_coincide_at_k1(self):
        rate, consumption, slope = 30_000, 19_500, 8_000
        k1 = formulas.k1_backoffs(rate, consumption)
        assert formulas.scenario_total(
            rate, consumption, slope, k1, SCENARIO_ONE) == pytest.approx(
            formulas.scenario_total(rate, consumption, slope, k1,
                                    SCENARIO_TWO))

    def test_scenario2_adds_fixed_triangles(self):
        rate, consumption, slope = 30_000, 19_500, 8_000
        k1 = formulas.k1_backoffs(rate, consumption)
        t_k1 = formulas.scenario_total(rate, consumption, slope, k1,
                                       SCENARIO_TWO)
        t_k3 = formulas.scenario_total(rate, consumption, slope, k1 + 2,
                                       SCENARIO_TWO)
        seq = formulas.triangle_area(consumption / 2, slope)
        assert t_k3 == pytest.approx(t_k1 + 2 * seq)

    def test_rejects_bad_scenario(self):
        with pytest.raises(ValueError):
            formulas.scenario_total(1000, 1000, 100, 1, 3)

    def test_rejects_k_zero(self):
        with pytest.raises(ValueError):
            formulas.scenario_total(1000, 1000, 100, 0, SCENARIO_ONE)

    @given(rate=rates, layer_rate=layer_rates, na=layer_counts,
           slope=slopes, k=ks)
    @settings(max_examples=200)
    def test_scenario1_monotone_in_k(self, rate, layer_rate, na, slope,
                                     k):
        consumption = na * layer_rate
        a = formulas.scenario_total(rate, consumption, slope, k,
                                    SCENARIO_ONE)
        b = formulas.scenario_total(rate, consumption, slope, k + 1,
                                    SCENARIO_ONE)
        assert b >= a - 1e-9

    @given(rate=rates, layer_rate=layer_rates, na=layer_counts,
           slope=slopes, k=ks)
    @settings(max_examples=200)
    def test_scenario2_monotone_in_k(self, rate, layer_rate, na, slope,
                                     k):
        consumption = na * layer_rate
        a = formulas.scenario_total(rate, consumption, slope, k,
                                    SCENARIO_TWO)
        b = formulas.scenario_total(rate, consumption, slope, k + 1,
                                    SCENARIO_TWO)
        assert b >= a - 1e-9


class TestScenarioShares:
    @given(rate=rates, layer_rate=layer_rates, na=layer_counts,
           slope=slopes, k=ks,
           scenario=st.sampled_from([SCENARIO_ONE, SCENARIO_TWO]))
    @settings(max_examples=300)
    def test_shares_sum_to_total(self, rate, layer_rate, na, slope, k,
                                 scenario):
        shares = formulas.scenario_shares(rate, layer_rate, na, slope, k,
                                          scenario)
        total = formulas.scenario_total(rate, na * layer_rate, slope, k,
                                        scenario)
        assert len(shares) == na
        assert math.fsum(shares) == pytest.approx(total, rel=1e-6,
                                                  abs=1e-6)

    @given(rate=rates, layer_rate=layer_rates, na=layer_counts,
           slope=slopes, k=ks,
           scenario=st.sampled_from([SCENARIO_ONE, SCENARIO_TWO]))
    @settings(max_examples=300)
    def test_shares_base_heavy(self, rate, layer_rate, na, slope, k,
                               scenario):
        shares = formulas.scenario_shares(rate, layer_rate, na, slope, k,
                                          scenario)
        for lower, higher in zip(shares, shares[1:]):
            assert lower >= higher - 1e-9

    def test_scenario1_equals_band_slicing(self):
        rate, layer_rate, na, slope = 30_000, 6_500, 4, 8_000
        shares = formulas.scenario_shares(rate, layer_rate, na, slope, 2,
                                          SCENARIO_ONE)
        deficit = na * layer_rate - rate / 4
        bands = formulas.band_shares(deficit, layer_rate, slope)
        for share, band in zip(shares, bands):
            assert share == pytest.approx(band)


class TestDrainDuration:
    def test_value(self):
        assert formulas.drain_duration(1000, 500) == pytest.approx(2.0)

    def test_negative_deficit_clamps(self):
        assert formulas.drain_duration(-10, 500) == 0.0

    def test_requires_positive_slope(self):
        with pytest.raises(ValueError):
            formulas.drain_duration(1.0, 0.0)
