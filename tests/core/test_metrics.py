"""Unit tests for Table 1/2 metrics."""

import pytest

from repro.core.metrics import DropCause, DropEvent, QualityMetrics


def event(buf_drop=0.0, buf_total=100.0, required=50.0,
          cause=DropCause.RULE, drainable=-1.0, layer=2, time=1.0):
    return DropEvent(time=time, layer=layer, buf_drop=buf_drop,
                     buf_total=buf_total, required=required, cause=cause,
                     drainable=drainable)


class TestDropEvent:
    def test_efficiency_perfect_when_empty(self):
        assert event(buf_drop=0.0, buf_total=100.0).efficiency == 1.0

    def test_efficiency_zero_when_everything_wasted(self):
        assert event(buf_drop=100.0, buf_total=100.0).efficiency == 0.0

    def test_efficiency_with_no_buffering_at_all(self):
        assert event(buf_drop=0.0, buf_total=0.0).efficiency == 1.0

    def test_drainable_defaults_to_total(self):
        e = event(buf_total=100.0)
        assert e.drainable == 100.0

    def test_poor_distribution_when_usable_sufficient(self):
        assert event(required=50.0, drainable=60.0).poor_distribution

    def test_not_poor_when_insufficient(self):
        assert not event(required=50.0, drainable=40.0).poor_distribution


class TestQualityMetrics:
    def test_empty_metrics_report_none(self):
        m = QualityMetrics()
        assert m.buffering_efficiency() is None
        assert m.poor_distribution_percent() is None

    def test_efficiency_mean(self):
        m = QualityMetrics()
        m.record_drop(event(buf_drop=0.0, buf_total=100.0))
        m.record_drop(event(buf_drop=50.0, buf_total=100.0))
        assert m.buffering_efficiency() == pytest.approx(0.75)

    def test_poor_percent(self):
        m = QualityMetrics()
        m.record_drop(event(required=50.0, drainable=60.0))
        m.record_drop(event(required=50.0, drainable=40.0))
        m.record_drop(event(required=50.0, drainable=30.0))
        assert m.poor_distribution_percent() == pytest.approx(100 / 3)

    def test_quality_changes_counts_adds_and_drops(self):
        m = QualityMetrics()
        m.record_add(1.0, 1)
        m.record_add(2.0, 2)
        m.record_drop(event())
        assert m.quality_changes == 3

    def test_stall_accumulation(self):
        m = QualityMetrics()
        m.record_stall(0.5)
        m.record_stall(0.25)
        assert m.stall_count == 2
        assert m.stall_time == pytest.approx(0.75)

    def test_summary_keys(self):
        m = QualityMetrics()
        summary = m.summary()
        for key in ("drops", "adds", "quality_changes",
                    "efficiency_percent", "poor_distribution_percent",
                    "stall_count", "stall_time", "startup_latency"):
            assert key in summary

    def test_summary_scales_percentages(self):
        m = QualityMetrics()
        m.record_drop(event(buf_drop=10.0, buf_total=100.0))
        assert m.summary()["efficiency_percent"] == pytest.approx(90.0)
