"""Tests for the top-level public API surface."""

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_build_experiment_returns_runnable(self):
        experiment = repro.build_experiment(duration=3.0, seed=1)
        result = experiment.run()
        assert "mean_rate" in result.summary()

    def test_core_reexports(self):
        assert repro.QAConfig is not None
        assert repro.StateSequence is not None
        assert repro.StreamingSession is not None

    def test_subpackage_alls_resolve(self):
        import repro.analysis
        import repro.baselines
        import repro.sim
        import repro.transport

        for module in (repro.analysis, repro.baselines, repro.sim,
                       repro.transport):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)
