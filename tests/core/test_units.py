"""Unit tests for unit helpers."""

import pytest

from repro.core import units


def test_kbps_to_bytes():
    assert units.kbps_to_bytes(800) == pytest.approx(100_000.0)


def test_kBps_to_bytes():
    assert units.kBps_to_bytes(10) == pytest.approx(10_000.0)


def test_bytes_to_kBps_roundtrip():
    assert units.bytes_to_kBps(units.kBps_to_bytes(12.5)) == \
        pytest.approx(12.5)


def test_ms():
    assert units.ms(40) == pytest.approx(0.04)
