"""Unit tests for the QualityAdapter (driven directly, no network)."""

import pytest

from repro.core.adapter import QualityAdapter
from repro.core.config import QAConfig
from repro.core.metrics import DropCause


class Harness:
    """A hand-cranked environment for the adapter."""

    def __init__(self, config=None, rate=30_000.0, slope=8_000.0):
        self.config = config or QAConfig(
            layer_rate=5_000.0, max_layers=4, k_max=2, packet_size=500,
            startup_delay=0.5)
        self.now = 0.0
        self.rate = rate
        self.slope = slope
        self.events = []
        self.adapter = QualityAdapter(
            self.config,
            now_fn=lambda: self.now,
            rate_fn=lambda: self.rate,
            slope_fn=lambda: self.slope,
            on_event=lambda t, kind, f: self.events.append((t, kind, f)),
        )
        self._seq = 0

    def send_packets(self, count, ack=True):
        """Crank `count` transmission opportunities at the current time.

        ``ack=True`` immediately acknowledges each packet (a zero-RTT
        network); without it, in-flight data accumulates as if ACKs never
        returned.
        """
        layers = []
        for _ in range(count):
            meta = self.adapter.pick_layer(self._seq)
            self._seq += 1
            layers.append(meta["layer"])
            if ack:
                self.adapter.on_delivered(meta["layer"],
                                          self.config.packet_size)
        return layers

    def advance(self, dt, tick=True):
        self.now += dt
        if tick:
            self.adapter.tick()

    def drive(self, seconds, packets_per_tick=None):
        """Run ticks at drain_period, sending rate-worth of packets."""
        period = self.config.drain_period
        if packets_per_tick is None:
            packets_per_tick = max(
                1, round(self.rate * period / self.config.packet_size))
        steps = int(round(seconds / period))
        for _ in range(steps):
            self.send_packets(packets_per_tick)
            self.advance(period)


class TestStartup:
    def test_base_layer_active_from_start(self):
        h = Harness()
        assert h.adapter.active_layers == 1
        assert h.adapter.buffers.is_active(0)

    def test_playout_starts_after_delay(self):
        h = Harness()
        h.send_packets(5)
        assert not h.adapter.playout_started
        h.advance(0.6)
        assert h.adapter.playout_started
        assert h.adapter.metrics.startup_latency == 0.5

    def test_every_packet_carries_layer_and_active_count(self):
        h = Harness()
        meta = h.adapter.pick_layer(0)
        assert meta["layer"] == 0
        assert meta["active"] == h.adapter.active_layers

    def test_before_playout_everything_is_filling(self):
        h = Harness(rate=1_000.0)  # far below even one layer
        assert h.adapter.is_filling()


class TestAddAndGrow:
    def test_layers_get_added_with_ample_bandwidth(self):
        h = Harness(rate=40_000.0)
        h.drive(10.0)
        assert h.adapter.active_layers > 1
        assert any(kind == "add" for _, kind, _ in h.events)

    def test_never_exceeds_max_layers(self):
        h = Harness(rate=200_000.0)
        h.drive(20.0)
        assert h.adapter.active_layers <= h.config.max_layers

    def test_consumption_property(self):
        h = Harness()
        assert h.adapter.consumption == pytest.approx(
            h.adapter.active_layers * h.config.layer_rate)

    def test_buffers_grow_during_filling(self):
        h = Harness(rate=30_000.0)
        h.drive(5.0)
        assert h.adapter.buffers.total() > 0


class TestBackoffAndDrop:
    def test_backoff_emits_event_and_freezes_path(self):
        h = Harness(rate=30_000.0)
        h.drive(5.0)
        h.rate = 15_000.0
        h.adapter.on_backoff(15_000.0)
        assert any(kind == "backoff" for _, kind, _ in h.events)
        assert h.adapter._sequence is not None

    def test_deep_collapse_drops_layers(self):
        h = Harness(rate=40_000.0)
        h.drive(10.0)
        before = h.adapter.active_layers
        assert before > 1
        # Catastrophic collapse: rate to a trickle, tick a while.
        h.rate = 1_000.0
        h.adapter.on_backoff(1_000.0)
        h.drive(5.0, packets_per_tick=1)
        assert h.adapter.active_layers < before
        assert h.adapter.metrics.drops

    def test_base_layer_never_dropped(self):
        h = Harness(rate=40_000.0)
        h.drive(5.0)
        h.rate = 100.0
        h.adapter.on_backoff(100.0)
        h.drive(10.0, packets_per_tick=1)
        assert h.adapter.active_layers >= 1

    def test_drop_event_fields(self):
        h = Harness(rate=40_000.0)
        h.drive(10.0)
        h.rate = 1_000.0
        h.adapter.on_backoff(1_000.0)
        h.drive(5.0, packets_per_tick=1)
        event = h.adapter.metrics.drops[0]
        assert event.buf_total >= event.buf_drop >= 0
        assert event.required >= 0
        assert isinstance(event.cause, DropCause)


class TestFeedbackModes:
    def test_send_mode_credits_at_send(self):
        h = Harness()
        h.send_packets(3)
        assert h.adapter.buffers.delivered(0) == 3 * 500

    def test_send_mode_withdraws_on_loss(self):
        h = Harness()
        h.send_packets(3)
        h.adapter.on_lost(0, 500)
        assert h.adapter.buffers.delivered(0) == 2 * 500

    def test_ack_mode_credits_on_ack_only(self):
        h = Harness(QAConfig(layer_rate=5_000.0, max_layers=4, k_max=2,
                             packet_size=500, feedback="ack"))
        h.send_packets(3, ack=False)
        assert h.adapter.buffers.delivered(0) == 0
        h.adapter.on_delivered(0, 500)
        assert h.adapter.buffers.delivered(0) == 500

    def test_oracle_mode_ignores_losses(self):
        h = Harness(QAConfig(layer_rate=5_000.0, max_layers=4, k_max=2,
                             packet_size=500, feedback="oracle"))
        h.send_packets(3)
        h.adapter.on_lost(0, 500)
        assert h.adapter.buffers.delivered(0) == 3 * 500

    def test_inflight_tracking(self):
        h = Harness()
        h.send_packets(4, ack=False)
        assert h.adapter._inflight[0] == 4 * 500
        h.adapter.on_delivered(0, 500)
        assert h.adapter._inflight[0] == 3 * 500
        h.adapter.on_lost(0, 500)
        assert h.adapter._inflight[0] == 2 * 500

    def test_safety_levels_subtract_inflight(self):
        h = Harness()
        h.send_packets(4, ack=False)
        levels = h.adapter.buffer_levels()
        safety = h.adapter.safety_levels()
        assert safety[0] == pytest.approx(
            max(0.0, levels[0] - h.adapter._inflight[0]))


class TestAllocatorSelection:
    def test_optimal_by_default(self):
        from repro.core.draining import DrainingPlanner
        from repro.core.filling import FillingPolicy
        h = Harness()
        assert type(h.adapter.filling_policy) is FillingPolicy
        assert type(h.adapter.planner) is DrainingPlanner

    def test_equal_share_selected(self):
        from repro.baselines.allocators import EqualShareFillingPolicy
        h = Harness(QAConfig(layer_rate=5_000.0, allocator="equal_share"))
        assert isinstance(h.adapter.filling_policy,
                          EqualShareFillingPolicy)

    def test_base_first_selected(self):
        from repro.baselines.allocators import BaseFirstFillingPolicy
        h = Harness(QAConfig(layer_rate=5_000.0, allocator="base_first"))
        assert isinstance(h.adapter.filling_policy,
                          BaseFirstFillingPolicy)


class TestSlopeSmoothing:
    def test_slope_override_wins(self):
        h = Harness(QAConfig(layer_rate=5_000.0, slope_override=1234.0))
        assert h.adapter.slope == 1234.0

    def test_slope_ewma_converges(self):
        h = Harness(slope=10_000.0)
        h.drive(2.0)
        h.slope = 20_000.0
        h.drive(20.0)
        assert 15_000.0 < h.adapter.slope <= 20_000.0
