"""Property tests for the scripted sawtooth and fluid buffer accounting.

Hypothesis generates AIMD trajectories and backoff scripts; the
properties pin the invariants every fluid-path consumer leans on:

- the scripted rate never falls below its floor, whatever the script;
- ``backoffs_until`` consumes each scripted instant exactly once, in
  order, no matter how the query times slice the script;
- a full fluid run conserves bytes: everything sent is consumed,
  discarded, still buffered, or covered by a recorded stall shortfall.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import QAConfig
from repro.core.fluid import ScriptedAimd
from repro.sim.fluid import FluidEngine

_rates = st.floats(min_value=500.0, max_value=50_000.0)
_slopes = st.floats(min_value=100.0, max_value=5_000.0)
_scripts = st.lists(
    st.floats(min_value=0.0, max_value=60.0, allow_nan=False),
    max_size=8)


@given(initial=_rates, slope=_slopes, script=_scripts,
       probes=st.lists(st.floats(min_value=0.0, max_value=70.0),
                       min_size=1, max_size=12))
def test_rate_never_falls_below_the_floor(initial, slope, script, probes):
    aimd = ScriptedAimd(initial, slope, backoff_times=script,
                        min_rate=100.0)
    floor = min(initial, aimd.min_rate)
    clock = 0.0
    for probe in sorted(probes):
        clock = max(clock, probe)
        for at in aimd.backoffs_until(clock):
            aimd.apply_backoff(at)
        assert aimd.rate(clock) >= floor - 1e-9


@given(script=_scripts,
       probes=st.lists(st.floats(min_value=0.0, max_value=70.0),
                       min_size=1, max_size=12))
def test_backoffs_until_consumes_each_instant_exactly_once(script, probes):
    aimd = ScriptedAimd(10_000.0, 1_000.0, backoff_times=script)
    seen: list[float] = []
    clock = 0.0
    for probe in sorted(probes):
        clock = max(clock, probe)
        due = aimd.backoffs_until(clock)
        assert all(t <= clock for t in due)
        seen.extend(due)
    # Everything scripted at or before the last probe came out exactly
    # once, in order; the rest is still pending, also in order.
    assert seen == sorted(t for t in script if t <= clock)
    assert list(aimd.pending_backoffs) == sorted(
        t for t in script if t > clock)
    assert seen + list(aimd.pending_backoffs) == sorted(script)


@given(initial_mult=st.floats(min_value=0.9, max_value=3.0),
       slope=st.floats(min_value=400.0, max_value=2_500.0),
       k_max=st.integers(min_value=1, max_value=3),
       script=st.lists(st.floats(min_value=1.0, max_value=28.0),
                       max_size=4))
@settings(max_examples=40, deadline=None)
def test_fluid_run_conserves_bytes_across_backoffs(
        initial_mult, slope, k_max, script):
    config = QAConfig(layer_rate=2500.0, max_layers=4, k_max=k_max,
                      packet_size=200, startup_delay=0.5)
    engine = FluidEngine(
        config,
        ScriptedAimd(2500.0 * initial_mult, slope,
                     backoff_times=script, max_rate=20_000.0),
        duration=30.0, sample_period=None)
    result = engine.run()
    # sent == consumed + discarded + buffered - stall shortfall, to
    # floating-point accumulation error.
    assert abs(result.conservation_error) <= max(
        1e-6 * result.sent_bytes, 1e-6)
    assert result.final_buffer >= -1e-9
    assert 1 <= result.final_layers <= config.max_layers
