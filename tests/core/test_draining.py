"""Unit and property tests for the draining planner (section 4.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import QAConfig
from repro.core.draining import DrainingPlanner
from repro.core.states import StateSequence


@pytest.fixture
def config():
    return QAConfig(layer_rate=5_000.0, max_layers=4, k_max=2,
                    packet_size=500, maintenance_floor=0.0,
                    base_floor=0.0)


@pytest.fixture
def planner(config):
    return DrainingPlanner(config)


def sequence_for(config, rate=40_000.0, na=4, slope=5_000.0):
    return StateSequence(rate, config.layer_rate, na, slope,
                         config.k_max)


class TestPlanInvariants:
    def test_rejects_mismatched_sequence(self, planner, config):
        seq = sequence_for(config, na=3)
        with pytest.raises(ValueError):
            planner.plan(10_000.0, [0.0] * 4, 4, 0.1, seq)

    def test_no_drain_needed_when_rate_covers(self, planner, config):
        seq = sequence_for(config)
        plan = planner.plan(25_000.0, [1000.0] * 4, 4, 0.1, seq)
        assert plan.total_drain == pytest.approx(0.0)
        assert plan.shortfall == 0.0

    def test_quotas_complement_drains(self, planner, config):
        seq = sequence_for(config)
        buffers = [10_000.0, 5_000.0, 2_000.0, 500.0]
        plan = planner.plan(12_000.0, buffers, 4, 0.1, seq)
        cap = config.layer_rate * 0.1
        for drain, quota in zip(plan.drain, plan.quotas):
            assert quota == pytest.approx(cap - drain)

    def test_covers_exact_deficit(self, planner, config):
        seq = sequence_for(config)
        buffers = [10_000.0, 5_000.0, 2_000.0, 500.0]
        rate = 12_000.0  # deficit 8_000 B/s
        plan = planner.plan(rate, buffers, 4, 0.1, seq)
        assert plan.total_drain == pytest.approx(8_000 * 0.1)

    def test_drains_top_layers_first(self, planner, config):
        seq = sequence_for(config)
        # Everyone holds plenty; a small deficit should come from the top.
        buffers = [50_000.0] * 4
        plan = planner.plan(19_000.0, buffers, 4, 0.1, seq)
        assert plan.drain[3] > 0
        assert plan.drain[0] == pytest.approx(0.0)

    def test_per_layer_cap_is_consumption_rate(self, planner, config):
        seq = sequence_for(config)
        buffers = [50_000.0] * 4
        # Deficit of 15_000 B/s: needs three layers at cap.
        plan = planner.plan(5_000.0, buffers, 4, 0.1, seq)
        cap = config.layer_rate * 0.1
        assert max(plan.drain) <= cap + 1e-9
        assert plan.total_drain == pytest.approx(15_000 * 0.1)

    def test_shortfall_when_buffers_empty(self, planner, config):
        seq = sequence_for(config)
        plan = planner.plan(5_000.0, [0.0] * 4, 4, 0.1, seq)
        assert plan.shortfall == pytest.approx(15_000 * 0.1)

    def test_base_protection_respected(self, config):
        cfg = config.with_(base_floor=1.0)  # 5000 bytes protected
        planner = DrainingPlanner(cfg)
        seq = StateSequence(40_000.0, cfg.layer_rate, 4, 5_000.0,
                            cfg.k_max)
        buffers = [5_000.0, 0.0, 0.0, 0.0]
        plan = planner.plan(5_000.0, buffers, 4, 0.1, seq)
        assert plan.drain[0] == pytest.approx(0.0)
        assert plan.shortfall > 0

    def test_extra_base_protection_parameter(self, planner, config):
        seq = sequence_for(config)
        buffers = [4_000.0, 0.0, 0.0, 0.0]
        unprotected = planner.plan(5_000.0, buffers, 4, 0.1, seq)
        protected = planner.plan(5_000.0, buffers, 4, 0.1, seq,
                                 base_protection=4_000.0)
        assert protected.drain[0] < unprotected.drain[0] + 1e-9
        assert protected.shortfall >= unprotected.shortfall

    def test_respects_path_targets_before_regressing(self, planner,
                                                     config):
        seq = sequence_for(config)
        first = seq[0].effective_shares
        # Buffers exactly at the first state's shares plus a little in
        # the top layer: a small deficit should take the top layer's
        # excess, not dip below the state's shares.
        buffers = [s for s in first]
        buffers[-1] += 400.0
        plan = planner.plan(
            config.layer_rate * 4 - 3_000.0, buffers, 4, 0.1, seq)
        for layer in range(4):
            remaining = buffers[layer] - plan.drain[layer]
            if layer < 3:
                assert remaining >= first[layer] - 1e-6


class TestPlanProperties:
    @given(rate=st.floats(min_value=1_000, max_value=19_000),
           buffers=st.lists(st.floats(min_value=0, max_value=50_000),
                            min_size=4, max_size=4),
           period=st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=200, deadline=None)
    def test_conservation_and_bounds(self, rate, buffers, period):
        cfg = QAConfig(layer_rate=5_000.0, max_layers=4, k_max=2,
                       packet_size=500, maintenance_floor=0.0,
                       base_floor=0.0)
        planner = DrainingPlanner(cfg)
        seq = StateSequence(40_000.0, cfg.layer_rate, 4, 5_000.0, 2)
        plan = planner.plan(rate, buffers, 4, period, seq)
        cap = cfg.layer_rate * period
        need = max(0.0, (4 * cfg.layer_rate - rate) * period)
        for layer in range(4):
            assert -1e-9 <= plan.drain[layer] <= cap + 1e-9
            assert plan.drain[layer] <= buffers[layer] + 1e-9
            assert plan.quotas[layer] >= -1e-9
        assert plan.total_drain + plan.shortfall == pytest.approx(
            need, abs=1e-6)
