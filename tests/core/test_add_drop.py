"""Unit tests for the coarse-grain add/drop policy."""

import pytest

from repro.core import formulas
from repro.core.add_drop import AddDropPolicy
from repro.core.states import StateSequence


@pytest.fixture
def policy(qa_config):
    return AddDropPolicy(qa_config)


def targets_for(config, rate, na, slope, k_max=None):
    return StateSequence(rate, config.layer_rate, na, slope,
                         k_max or config.k_max).final_targets


class TestBufferOnlyRule:
    def test_add_with_ample_everything(self, policy, qa_config):
        rate, na, slope = 60_000.0, 2, 5_000.0
        buffers = [1e6, 1e6]
        assert policy.can_add(rate, rate, na, buffers, slope)

    def test_no_add_with_empty_buffers_at_marginal_rate(self, policy):
        # At 1.2x the current consumption, surviving backoffs needs real
        # buffering. (At many multiples of the consumption rate, zero
        # buffering is legitimately sufficient -- recovery is instant.)
        assert not policy.can_add(12_000.0, 12_000.0, 2, [0.0, 0.0],
                                  5_000.0)

    def test_no_add_at_max_layers(self, policy, qa_config):
        na = qa_config.max_layers
        assert not policy.can_add(1e6, 1e6, na, [1e6] * na, 5_000.0)

    def test_condition2_gates_marginal_rate(self, policy, qa_config):
        # Rate barely above existing consumption: surviving one backoff
        # with the new layer needs a lot of buffering.
        na = 2
        rate = qa_config.consumption(na) * 1.05
        slope = 5_000.0
        required = formulas.one_backoff_requirement(
            rate, qa_config.consumption(na + 1), slope)
        too_little = [required * 0.2, 0.0]
        assert not policy.can_add(rate, rate, na, too_little, slope)

    def test_per_layer_targets_must_be_met(self, policy, qa_config):
        rate, na, slope = 60_000.0, 2, 5_000.0
        targets = targets_for(qa_config, rate, na, slope)
        # Plenty of total but everything in the base layer below L1's
        # target: not addable unless L1 target is zero.
        if targets[1] > 0:
            buffers = [1e6, targets[1] * 0.5]
            assert not policy.can_add(rate, rate, na, buffers, slope)

    def test_base_reserve_raises_the_bar(self, policy, qa_config):
        rate, na, slope = 60_000.0, 2, 5_000.0
        targets = targets_for(qa_config, rate, na, slope)
        exact = [targets[0] + 1, targets[1] + 1]
        assert policy.can_add(rate, rate, na, exact, slope,
                              base_reserve=0.0)
        assert not policy.can_add(rate, rate, na, exact, slope,
                                  base_reserve=10_000.0)


class TestAverageBandwidthRule:
    @pytest.fixture
    def policy(self, qa_config):
        return AddDropPolicy(qa_config.with_(
            add_rule="average_bandwidth"))

    def test_requires_average_above_new_consumption(self, policy,
                                                    qa_config):
        na = 2
        new_consumption = qa_config.layer_rate * (na + 1)
        assert not policy.can_add(
            rate=1e6, average_rate=new_consumption * 0.9,
            active_layers=na, buffers=[1e6, 1e6], slope=5_000.0)

    def test_adds_when_average_sufficient(self, policy, qa_config):
        na = 2
        new_consumption = qa_config.layer_rate * (na + 1)
        assert policy.can_add(
            rate=1e6, average_rate=new_consumption * 1.1,
            active_layers=na, buffers=[1e6, 1e6], slope=5_000.0)

    def test_still_needs_one_backoff_buffering(self, policy, qa_config):
        na = 2
        new_consumption = qa_config.layer_rate * (na + 1)
        assert not policy.can_add(
            rate=new_consumption * 1.2,
            average_rate=new_consumption * 1.1,
            active_layers=na, buffers=[0.0, 0.0], slope=100.0)


class TestBufferAndRateRule:
    @pytest.fixture
    def policy(self, qa_config):
        return AddDropPolicy(qa_config.with_(add_rule="buffer_and_rate"))

    def test_requires_instantaneous_rate(self, policy, qa_config):
        na = 2
        rate = qa_config.layer_rate * (na + 1) * 0.99
        assert not policy.can_add(rate, rate, na, [1e6, 1e6], 5_000.0)

    def test_adds_with_rate_and_buffers(self, policy, qa_config):
        na = 2
        rate = qa_config.layer_rate * (na + 1) * 2.0
        assert policy.can_add(rate, rate, na, [1e6, 1e6], 5_000.0)


class TestDropRule:
    def test_delegates_to_formula(self, policy, qa_config):
        kept = policy.layers_after_drop_rule(
            rate=1_000.0, total_buffer=0.0, active_layers=4,
            slope=1_000.0)
        assert kept == 1

    def test_no_drop_with_plenty(self, policy):
        kept = policy.layers_after_drop_rule(
            rate=100_000.0, total_buffer=1e9, active_layers=4,
            slope=1_000.0)
        assert kept == 4
