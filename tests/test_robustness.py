"""Robustness / failure-injection integration tests.

The paper's headline promise is that the mechanism "did not make any
assumptions about loss patterns or available bandwidth". These tests
stress the full stack under conditions the evaluation section never
shows: RED queues, congested ACK paths, flash-crowd arrivals, long runs,
and mid-stream background churn -- asserting the invariants that must
survive anything: no base-layer stalls (or only negligible ones), layer
count within bounds, buffers non-negative, accounting consistent.
"""

import pytest

from repro.core.config import QAConfig
from repro.server.session import StreamingSession
from repro.sim.queues import REDQueue
from repro.sim.rng import SeededRNG
from repro.sim.topology import Dumbbell, DumbbellConfig
from repro.transport import (
    CbrSink,
    CbrSource,
    RapSink,
    RapSource,
    TcpSink,
    TcpSource,
)

CONFIG = dict(layer_rate=6_500.0, max_layers=4, k_max=2, packet_size=500)


def build(sim, n_pairs=6, bandwidth=150_000, queue=50, **qa_overrides):
    net = Dumbbell(sim, DumbbellConfig(
        n_pairs=n_pairs, bottleneck_bandwidth=bandwidth,
        queue_capacity_packets=queue))
    session = StreamingSession(sim, *net.pair(0),
                               QAConfig(**{**CONFIG, **qa_overrides}))
    return net, session


def add_rap(sim, net, slot, **kwargs):
    src, dst = net.pair(slot)
    source = RapSource(sim, src, dst.name, packet_size=500, **kwargs)
    RapSink(sim, dst, src.name, source.flow_id)
    return source


def add_tcp(sim, net, slot, **kwargs):
    src, dst = net.pair(slot)
    source = TcpSource(sim, src, dst.name, **kwargs)
    TcpSink(sim, dst, src.name, source.flow_id)
    return source


def assert_sane(session, max_stall_time=0.0):
    result = session.result()
    assert result.playout.stall_time <= max_stall_time
    layers = result.tracer.get("layers")
    assert 1 <= layers.min() and layers.max() <= 4
    for i in range(4):
        assert result.tracer.get(f"buffer_L{i}").min() >= 0.0
    assert result.playout.played_bytes > 0
    return result


class TestRedBottleneck:
    def test_qa_survives_red_queue(self, sim):
        net = Dumbbell(sim, DumbbellConfig(
            n_pairs=4, bottleneck_bandwidth=120_000,
            queue_capacity_packets=60))
        # Swap the bottleneck queue for RED (early, randomized drops).
        net.bottleneck.queue = REDQueue(
            capacity_packets=60, min_thresh=5, max_thresh=30,
            rng=SeededRNG(3))
        session = StreamingSession(sim, *net.pair(0),
                                   QAConfig(**CONFIG))
        for slot in range(1, 4):
            add_rap(sim, net, slot, srtt_init=0.2 + 0.02 * slot)
        sim.run(until=40.0)
        assert_sane(session)


class TestReverseCongestion:
    def test_ack_path_under_pressure(self, sim):
        """CBR floods the *reverse* bottleneck: ACKs are delayed and
        dropped, the estimator's in-flight view degrades -- playback
        should still hold (send-crediting tolerates missing ACKs)."""
        net, session = build(sim, n_pairs=6)
        for slot in range(1, 3):
            add_rap(sim, net, slot, srtt_init=0.22 + 0.02 * slot)
        # Reverse-direction CBR: from a sink host toward its source.
        src, dst = net.pair(5)
        cbr = CbrSource(sim, dst, src.name, rate=60_000,
                        packet_size=500, start=10.0, stop=25.0)
        CbrSink(sim, src, dst.name, cbr.flow_id)
        # Make the reverse path actually constrained for the test.
        net.reverse_bottleneck.queue.capacity_packets = 60
        sim.run(until=40.0)
        # Brief hiccups are tolerable under ACK starvation; collapse is
        # not.
        result = session.result()
        assert result.playout.stall_time < 1.0
        assert result.playout.played_bytes > 0


class TestFlashCrowd:
    def test_uncapped_buffers_ride_out_the_crowd(self, sim):
        """Without flow control (the paper's simplification), a lone
        flow pre-crowd parks a huge buffer that absorbs the entire
        25-second crowd at full quality."""
        net, session = build(sim, n_pairs=12, bandwidth=150_000)
        for slot in range(1, 12):
            add_tcp(sim, net, slot, start=15.0 + 0.01 * slot,
                    stop=40.0)
        sim.run(until=55.0)
        result = assert_sane(session)
        crowd = result.tracer.get("layers").window(25.0, 40.0)
        assert crowd.time_average() == pytest.approx(4.0, abs=0.2)

    def test_flow_controlled_buffers_force_adaptation(self, sim):
        """With a realistic receiver cap, the same crowd forces layer
        drops -- and still no stalls."""
        net, session = build(sim, n_pairs=12, bandwidth=150_000,
                             max_buffer_seconds=4.0)
        for slot in range(1, 12):
            add_tcp(sim, net, slot, start=15.0 + 0.01 * slot,
                    stop=40.0)
        sim.run(until=55.0)
        result = assert_sane(session, max_stall_time=0.5)
        layers = result.tracer.get("layers")
        before = layers.window(8.0, 15.0).time_average()
        crowd = layers.window(25.0, 40.0).time_average()
        after = layers.window(48.0, 55.0).time_average()
        assert crowd < before
        assert after > crowd
        # The cap is honoured (estimator view, one packet of slack).
        for i in range(4):
            assert result.tracer.get(f"buffer_est_L{i}").max() \
                <= 4.0 * CONFIG["layer_rate"] + CONFIG["packet_size"]

    def test_background_churn(self, sim):
        """Flows joining and leaving every few seconds."""
        net, session = build(sim, n_pairs=8, bandwidth=150_000)
        for slot in range(1, 8):
            add_rap(sim, net, slot,
                    start=2.0 * slot, stop=2.0 * slot + 11.0,
                    srtt_init=0.2 + 0.01 * slot)
        sim.run(until=40.0)
        assert_sane(session, max_stall_time=0.5)


class TestLongRun:
    def test_two_minute_stability(self, sim):
        """No slow leaks: buffers bounded, accounting consistent, zero
        stalls over a long steady run."""
        net, session = build(sim, n_pairs=6)
        for slot in range(1, 6):
            add_rap(sim, net, slot, srtt_init=0.2 + 0.01 * slot)
        sim.run(until=120.0)
        result = assert_sane(session)
        # Bounded buffering: the base may park excess, but it must stay
        # within an order of magnitude of the K_max targets, not grow
        # without bound.
        assert result.tracer.get("total_buffer").max() < 500_000
        adapter = session.server.adapter
        for i in range(adapter.active_layers):
            assert adapter.buffers.delivered(i) >= \
                adapter.buffers.consumed(i) - 1e-6

    def test_trace_consistency(self, sim):
        """Per-layer send rates integrate to the transport's output."""
        net, session = build(sim, n_pairs=4)
        for slot in range(1, 4):
            add_rap(sim, net, slot, srtt_init=0.2 + 0.01 * slot)
        sim.run(until=30.0)
        adapter = session.server.adapter
        total_assigned = sum(adapter.sent_bytes_per_layer)
        total_sent = session.server.rap.stats.bytes_sent
        assert total_assigned == pytest.approx(total_sent, rel=0.01)
