"""Unit tests for transport plumbing shared by all agents."""

from repro.sim.node import Host
from repro.sim.packet import PacketType
from repro.transport.base import FlowStats, TransportAgent, next_flow_id


class TestFlowStats:
    def test_goodput(self):
        stats = FlowStats(bytes_received=1000)
        assert stats.goodput(10.0) == 100.0

    def test_goodput_zero_duration(self):
        assert FlowStats(bytes_received=1000).goodput(0.0) == 0.0

    def test_defaults_are_zero(self):
        stats = FlowStats()
        assert stats.packets_sent == 0
        assert stats.backoffs == 0
        assert stats.timeouts == 0


class TestFlowIds:
    def test_unique_and_increasing(self):
        a, b = next_flow_id(), next_flow_id()
        assert b == a + 1


class TestTransportAgent:
    def test_attaches_to_host(self, sim):
        host = Host(sim, "h")
        agent = TransportAgent(sim, host, "peer", flow_id=4242)
        assert host._handlers[4242] is agent

    def test_make_packet_fields(self, sim):
        host = Host(sim, "h")
        agent = TransportAgent(sim, host, "peer", flow_id=4243)
        packet = agent._make_packet(7, 500, layer=2)
        assert packet.flow_id == 4243
        assert packet.seq == 7
        assert packet.size == 500
        assert packet.src == "h"
        assert packet.dst == "peer"
        assert packet.meta == {"layer": 2}
        assert packet.ptype is PacketType.DATA

    def test_transmit_counts_only_data(self, sim):
        host = Host(sim, "h")
        sent = []

        class FakeLink:
            def send(self, packet):
                sent.append(packet)
                return True

        host.set_default_route(FakeLink())
        agent = TransportAgent(sim, host, "peer", flow_id=4244)
        agent._transmit(agent._make_packet(0, 500))
        agent._transmit(agent._make_packet(0, 40,
                                           ptype=PacketType.ACK))
        assert agent.stats.packets_sent == 1
        assert agent.stats.bytes_sent == 500
        assert len(sent) == 2
