"""Unit tests for the RAP congestion controller."""

import pytest

from repro.sim.topology import Dumbbell, DumbbellConfig
from repro.transport.rap import RapSink, RapSource


@pytest.fixture
def wired(sim):
    """A RAP source/sink pair on a 20 KB/s bottleneck."""
    net = Dumbbell(sim, DumbbellConfig(
        n_pairs=1, bottleneck_bandwidth=20_000,
        queue_capacity_packets=10))
    src, dst = net.pair(0)
    source = RapSource(sim, src, dst.name, packet_size=500)
    sink = RapSink(sim, dst, src.name, source.flow_id)
    return net, source, sink


class TestBasics:
    def test_packets_flow_and_are_acked(self, sim, wired):
        _, source, sink = wired
        sim.run(until=5.0)
        assert source.stats.packets_sent > 0
        assert sink.stats.packets_received > 0
        assert source.stats.acks_received > 0

    def test_rate_equals_packet_size_over_ipg(self, sim, wired):
        _, source, _ = wired
        assert source.rate == pytest.approx(
            source.packet_size / source.ipg)

    def test_slope_formula(self, sim, wired):
        _, source, _ = wired
        assert source.slope == pytest.approx(
            source.packet_size / source.srtt ** 2)

    def test_rejects_bad_packet_size(self, sim, wired):
        net, _, _ = wired
        src, dst = net.pair(0)
        with pytest.raises(ValueError):
            RapSource(sim, src, dst.name, packet_size=0, flow_id=999)

    def test_stop_silences_source(self, sim, wired):
        _, source, sink = wired
        sim.run(until=2.0)
        source.stop()
        sent = source.stats.packets_sent
        sim.run(until=4.0)
        assert source.stats.packets_sent == sent

    def test_stop_time_honoured(self, sim):
        net = Dumbbell(sim, DumbbellConfig(
            n_pairs=1, bottleneck_bandwidth=50_000))
        src, dst = net.pair(0)
        source = RapSource(sim, src, dst.name, stop=1.0)
        RapSink(sim, dst, src.name, source.flow_id)
        sim.run(until=1.0)
        sent = source.stats.packets_sent
        sim.run(until=3.0)
        assert source.stats.packets_sent == sent


class TestAimd:
    def test_additive_increase_without_loss(self, sim):
        # Huge bottleneck: no losses, rate should climb linearly.
        net = Dumbbell(sim, DumbbellConfig(
            n_pairs=1, bottleneck_bandwidth=10_000_000))
        src, dst = net.pair(0)
        source = RapSource(sim, src, dst.name, packet_size=500)
        RapSink(sim, dst, src.name, source.flow_id)
        r0 = source.rate
        sim.run(until=3.0)
        assert source.rate > r0
        assert source.stats.backoffs == 0

    def test_losses_trigger_backoffs(self, sim, wired):
        net, source, _ = wired
        sim.run(until=20.0)
        assert net.bottleneck.queue.drops > 0
        assert source.stats.backoffs > 0

    def test_rate_hunts_around_fair_share(self, sim, wired):
        _, source, sink = wired
        sim.run(until=30.0)
        goodput = sink.stats.bytes_received / 30.0
        assert 0.5 * 20_000 < goodput <= 20_000

    def test_one_backoff_per_congestion_event(self, sim, wired):
        """A burst of losses from one queue overflow halves once."""
        net, source, _ = wired
        sim.run(until=30.0)
        # Backoffs must be far fewer than lost packets would suggest if
        # each loss halved individually.
        assert source.stats.backoffs <= source.stats.packets_lost + 1
        assert source.stats.backoffs < 200

    def test_rate_never_below_min_rate(self, sim, wired):
        _, source, _ = wired
        sim.run(until=30.0)
        assert source.rate >= source.min_rate


class TestRttEstimation:
    def test_srtt_converges_to_path_rtt(self, sim):
        net = Dumbbell(sim, DumbbellConfig(
            n_pairs=1, bottleneck_bandwidth=1_000_000,
            access_delay=0.01, bottleneck_delay=0.03))
        src, dst = net.pair(0)
        source = RapSource(sim, src, dst.name, srtt_init=1.0)
        RapSink(sim, dst, src.name, source.flow_id)
        sim.run(until=10.0)
        # Base RTT is 0.1 s; srtt should be within queueing slack of it.
        assert 0.05 < source.srtt < 0.3

    def test_rto_bounds(self, sim, wired):
        _, source, _ = wired
        sim.run(until=5.0)
        assert 0.2 <= source.rto <= 5.0


class TestApplicationHooks:
    def test_payload_picker_controls_meta(self, sim):
        net = Dumbbell(sim, DumbbellConfig(
            n_pairs=1, bottleneck_bandwidth=100_000))
        src, dst = net.pair(0)
        source = RapSource(sim, src, dst.name,
                           payload_picker=lambda seq: {"layer": seq % 3})
        received = []
        RapSink(sim, dst, src.name, source.flow_id,
                on_data=lambda p: received.append(p.layer))
        sim.run(until=2.0)
        assert set(received) <= {0, 1, 2}
        assert len(received) > 3

    def test_payload_picker_none_skips_slot(self, sim):
        net = Dumbbell(sim, DumbbellConfig(
            n_pairs=1, bottleneck_bandwidth=100_000))
        src, dst = net.pair(0)
        source = RapSource(sim, src, dst.name,
                           payload_picker=lambda seq: None)
        RapSink(sim, dst, src.name, source.flow_id)
        sim.run(until=2.0)
        assert source.stats.packets_sent == 0

    def test_on_ack_receives_layer_meta(self, sim):
        net = Dumbbell(sim, DumbbellConfig(
            n_pairs=1, bottleneck_bandwidth=100_000))
        src, dst = net.pair(0)
        acked = []
        source = RapSource(
            sim, src, dst.name,
            payload_picker=lambda seq: {"layer": 1},
            on_ack=lambda seq, meta, size: acked.append((seq, meta)))
        RapSink(sim, dst, src.name, source.flow_id)
        sim.run(until=2.0)
        assert acked
        assert all(meta.get("layer") == 1 for _, meta in acked)

    def test_on_loss_and_on_backoff_fire_under_congestion(self, sim):
        net = Dumbbell(sim, DumbbellConfig(
            n_pairs=1, bottleneck_bandwidth=5_000,
            queue_capacity_packets=3))
        src, dst = net.pair(0)
        losses, backoffs = [], []
        source = RapSource(
            sim, src, dst.name, packet_size=500,
            on_loss=lambda seq, meta, size: losses.append(seq),
            on_backoff=backoffs.append)
        RapSink(sim, dst, src.name, source.flow_id)
        sim.run(until=20.0)
        assert losses
        assert backoffs
        # Backoff reports the post-halving rate.
        assert all(rate > 0 for rate in backoffs)

    def test_lost_packets_not_delivered(self, sim):
        net = Dumbbell(sim, DumbbellConfig(
            n_pairs=1, bottleneck_bandwidth=5_000,
            queue_capacity_packets=3))
        src, dst = net.pair(0)
        source = RapSource(sim, src, dst.name, packet_size=500)
        sink = RapSink(sim, dst, src.name, source.flow_id)
        sim.run(until=20.0)
        assert (sink.stats.packets_received
                < source.stats.packets_sent)
