"""Unit tests for the CBR on/off source."""

import pytest

from repro.sim.topology import Dumbbell, DumbbellConfig
from repro.transport.cbr import CbrSink, CbrSource


class TestCbr:
    def test_rate_is_respected(self, sim):
        net = Dumbbell(sim, DumbbellConfig(
            n_pairs=1, bottleneck_bandwidth=1_000_000))
        src, dst = net.pair(0)
        source = CbrSource(sim, src, dst.name, rate=10_000,
                           packet_size=500)
        sink = CbrSink(sim, dst, src.name, source.flow_id)
        sim.run(until=10.0)
        assert sink.stats.bytes_received / 10.0 == pytest.approx(
            10_000, rel=0.05)

    def test_start_stop_window(self, sim):
        net = Dumbbell(sim, DumbbellConfig(
            n_pairs=1, bottleneck_bandwidth=1_000_000))
        src, dst = net.pair(0)
        source = CbrSource(sim, src, dst.name, rate=10_000,
                           start=2.0, stop=4.0)
        sink = CbrSink(sim, dst, src.name, source.flow_id)
        sim.run(until=1.9)
        assert sink.stats.packets_received == 0
        sim.run(until=10.0)
        received_by_10 = sink.stats.bytes_received
        assert received_by_10 == pytest.approx(10_000 * 2.0, rel=0.1)

    def test_rejects_nonpositive_rate(self, sim):
        net = Dumbbell(sim, DumbbellConfig(n_pairs=1))
        src, dst = net.pair(0)
        with pytest.raises(ValueError):
            CbrSource(sim, src, dst.name, rate=0)

    def test_stop_method(self, sim):
        net = Dumbbell(sim, DumbbellConfig(
            n_pairs=1, bottleneck_bandwidth=1_000_000))
        src, dst = net.pair(0)
        source = CbrSource(sim, src, dst.name, rate=10_000)
        CbrSink(sim, dst, src.name, source.flow_id)
        sim.run(until=1.0)
        source.stop()
        sent = source.stats.packets_sent
        sim.run(until=3.0)
        assert source.stats.packets_sent == sent

    def test_cbr_does_not_react_to_congestion(self, sim):
        # Bottleneck far below the CBR rate: it keeps sending anyway.
        net = Dumbbell(sim, DumbbellConfig(
            n_pairs=1, bottleneck_bandwidth=5_000,
            queue_capacity_packets=5))
        src, dst = net.pair(0)
        source = CbrSource(sim, src, dst.name, rate=50_000,
                           packet_size=500)
        CbrSink(sim, dst, src.name, source.flow_id)
        sim.run(until=5.0)
        assert source.stats.bytes_sent == pytest.approx(
            50_000 * 5.0, rel=0.05)
        assert net.bottleneck.queue.drops > 0
