"""Unit tests for the Sack-style TCP background traffic."""

import pytest

from repro.sim.topology import Dumbbell, DumbbellConfig
from repro.transport.tcp import TcpSink, TcpSource


@pytest.fixture
def wired(sim):
    net = Dumbbell(sim, DumbbellConfig(
        n_pairs=1, bottleneck_bandwidth=50_000,
        queue_capacity_packets=10))
    src, dst = net.pair(0)
    source = TcpSource(sim, src, dst.name)
    sink = TcpSink(sim, dst, src.name, source.flow_id)
    return net, source, sink


class TestBasics:
    def test_bulk_transfer_progresses(self, sim, wired):
        _, source, sink = wired
        sim.run(until=5.0)
        assert sink.stats.packets_received > 10
        assert source.snd_una > 0

    def test_slow_start_doubles_window(self, sim):
        net = Dumbbell(sim, DumbbellConfig(
            n_pairs=1, bottleneck_bandwidth=10_000_000))
        src, dst = net.pair(0)
        source = TcpSource(sim, src, dst.name)
        TcpSink(sim, dst, src.name, source.flow_id)
        sim.run(until=0.5)
        assert source.cwnd > TcpSource.INITIAL_CWND * 2

    def test_srtt_measured(self, sim, wired):
        _, source, _ = wired
        sim.run(until=3.0)
        assert source.srtt is not None
        assert source.srtt > 0

    def test_utilizes_the_link(self, sim, wired):
        _, _, sink = wired
        sim.run(until=20.0)
        goodput = sink.stats.bytes_received / 20.0
        assert goodput > 0.7 * 50_000

    def test_stop_time(self, sim):
        net = Dumbbell(sim, DumbbellConfig(
            n_pairs=1, bottleneck_bandwidth=50_000))
        src, dst = net.pair(0)
        source = TcpSource(sim, src, dst.name, stop=1.0)
        TcpSink(sim, dst, src.name, source.flow_id)
        sim.run(until=1.2)
        sent = source.stats.packets_sent
        sim.run(until=3.0)
        assert source.stats.packets_sent == sent


class TestCongestionResponse:
    def test_losses_cause_fast_retransmit(self, sim, wired):
        net, source, _ = wired
        sim.run(until=20.0)
        assert net.bottleneck.queue.drops > 0
        assert source.stats.retransmissions > 0
        assert source.stats.backoffs > 0

    def test_receiver_gets_contiguous_data_despite_losses(
            self, sim, wired):
        _, source, sink = wired
        sim.run(until=20.0)
        # Cumulative ACK progress == contiguous delivery progress.
        assert sink._cumulative > 100
        assert source.snd_una == sink._cumulative + 1 or \
            source.snd_una >= sink._cumulative - 1000

    def test_window_deflates_after_recovery(self, sim, wired):
        _, source, _ = wired
        sim.run(until=20.0)
        # After repeated backoffs, cwnd cannot still be at slow-start
        # blow-up levels for this small pipe (BDP ~ a few packets).
        assert source.cwnd < 200

    def test_two_flows_share_bottleneck(self, sim):
        net = Dumbbell(sim, DumbbellConfig(
            n_pairs=2, bottleneck_bandwidth=50_000,
            queue_capacity_packets=10))
        sinks = []
        for i in range(2):
            src, dst = net.pair(i)
            source = TcpSource(sim, src, dst.name, start=0.05 * i)
            sinks.append(TcpSink(sim, dst, src.name, source.flow_id))
        sim.run(until=30.0)
        rates = [s.stats.bytes_received / 30.0 for s in sinks]
        assert sum(rates) > 0.7 * 50_000
        # Rough fairness: neither flow starves.
        assert min(rates) > 0.1 * max(rates)


class TestTimeout:
    def test_rto_fires_when_acks_stop(self, sim):
        # A tiny queue plus tiny bandwidth forces burst losses deep
        # enough to need timeouts.
        net = Dumbbell(sim, DumbbellConfig(
            n_pairs=1, bottleneck_bandwidth=2_000,
            queue_capacity_packets=2))
        src, dst = net.pair(0)
        source = TcpSource(sim, src, dst.name)
        TcpSink(sim, dst, src.name, source.flow_id)
        sim.run(until=30.0)
        assert source.stats.timeouts > 0
        # And the connection still makes progress afterwards.
        assert source.snd_una > 10
