"""Unit tests for the window-based AIMD transport (section 7)."""

import pytest

from repro.sim.topology import Dumbbell, DumbbellConfig
from repro.transport.aimd import WindowAimdSink, WindowAimdSource
from repro.transport.rap import RapSink


@pytest.fixture
def wired(sim):
    net = Dumbbell(sim, DumbbellConfig(
        n_pairs=1, bottleneck_bandwidth=20_000,
        queue_capacity_packets=10))
    src, dst = net.pair(0)
    source = WindowAimdSource(sim, src, dst.name, packet_size=500)
    sink = WindowAimdSink(sim, dst, src.name, source.flow_id)
    return net, source, sink


class TestBasics:
    def test_sink_is_rap_sink(self):
        assert WindowAimdSink is RapSink

    def test_data_flows(self, sim, wired):
        _, source, sink = wired
        sim.run(until=5.0)
        assert sink.stats.packets_received > 0
        assert source.stats.acks_received > 0

    def test_rate_and_slope_properties(self, sim, wired):
        _, source, _ = wired
        assert source.rate == pytest.approx(
            source.cwnd * source.packet_size / source.srtt)
        assert source.slope == pytest.approx(
            source.packet_size / source.srtt ** 2)

    def test_rejects_bad_packet_size(self, sim, wired):
        net, _, _ = wired
        src, dst = net.pair(0)
        with pytest.raises(ValueError):
            WindowAimdSource(sim, src, dst.name, packet_size=0,
                             flow_id=777)

    def test_window_limits_outstanding(self, sim, wired):
        _, source, _ = wired
        sim.run(until=10.0)
        assert len(source._outstanding) <= int(source.cwnd) + 1


class TestAimdBehaviour:
    def test_window_grows_without_loss(self, sim):
        net = Dumbbell(sim, DumbbellConfig(
            n_pairs=1, bottleneck_bandwidth=10_000_000))
        src, dst = net.pair(0)
        source = WindowAimdSource(sim, src, dst.name, packet_size=500)
        WindowAimdSink(sim, dst, src.name, source.flow_id)
        sim.run(until=5.0)
        assert source.cwnd > WindowAimdSource.INITIAL_CWND
        assert source.stats.backoffs == 0

    def test_congestion_halves_window(self, sim, wired):
        _, source, _ = wired
        sim.run(until=20.0)
        assert source.stats.backoffs > 0

    def test_utilizes_link(self, sim, wired):
        _, _, sink = wired
        sim.run(until=30.0)
        assert sink.stats.bytes_received / 30.0 > 0.5 * 20_000

    def test_one_backoff_per_event(self, sim, wired):
        _, source, _ = wired
        sim.run(until=20.0)
        assert source.stats.backoffs <= source.stats.packets_lost + 1

    def test_window_never_below_minimum(self, sim, wired):
        _, source, _ = wired
        sim.run(until=20.0)
        assert source.cwnd >= WindowAimdSource.MIN_CWND


class TestHooks:
    def test_payload_picker_meta(self, sim):
        net = Dumbbell(sim, DumbbellConfig(
            n_pairs=1, bottleneck_bandwidth=100_000))
        src, dst = net.pair(0)
        received = []
        source = WindowAimdSource(
            sim, src, dst.name,
            payload_picker=lambda seq: {"layer": seq % 2})
        WindowAimdSink(sim, dst, src.name, source.flow_id,
                       on_data=lambda p: received.append(p.layer))
        sim.run(until=3.0)
        assert set(received) <= {0, 1}
        assert received

    def test_backoff_hook_reports_rate(self, sim, wired):
        net, source, _ = wired
        rates = []
        source.on_backoff = rates.append
        sim.run(until=20.0)
        assert rates
        assert all(r > 0 for r in rates)

    def test_loss_hook_fires(self, sim):
        net = Dumbbell(sim, DumbbellConfig(
            n_pairs=1, bottleneck_bandwidth=5_000,
            queue_capacity_packets=3))
        src, dst = net.pair(0)
        losses = []
        source = WindowAimdSource(
            sim, src, dst.name, packet_size=500,
            on_loss=lambda seq, meta, size: losses.append(seq))
        WindowAimdSink(sim, dst, src.name, source.flow_id)
        sim.run(until=20.0)
        assert losses

    def test_drives_the_quality_adapter(self, sim):
        """The section-7 claim: the unchanged adapter works over a
        window AIMD transport."""
        from repro.core.config import QAConfig
        from repro.server.session import StreamingSession

        net = Dumbbell(sim, DumbbellConfig(
            n_pairs=1, bottleneck_bandwidth=40_000,
            queue_capacity_packets=20))
        config = QAConfig(layer_rate=8_000.0, max_layers=4, k_max=2,
                          packet_size=500)
        session = StreamingSession(
            sim, *net.pair(0), config,
            transport_cls=WindowAimdSource)
        sim.run(until=30.0)
        result = session.result()
        assert result.playout.played_bytes > 0
        assert result.tracer.get("layers").max() >= 2
