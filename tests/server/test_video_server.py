"""Unit tests for VideoServer and VideoClient wiring."""

import pathlib

import pytest

from repro.core.config import QAConfig
from repro.media.stream import LayeredStream
from repro.server.client import VideoClient
from repro.server.server import VideoServer
from repro.sim.topology import Dumbbell, DumbbellConfig


@pytest.fixture
def net(sim):
    return Dumbbell(sim, DumbbellConfig(
        n_pairs=1, bottleneck_bandwidth=60_000,
        queue_capacity_packets=30))


class TestVideoServer:
    def test_stream_with_fewer_layers_clamps_config(self, sim, net):
        config = QAConfig(layer_rate=5_000.0, max_layers=8)
        stream = LayeredStream(layer_rate=5_000.0, n_layers=3)
        server = VideoServer(sim, net.pair(0)[0], "dst0", config,
                             stream=stream)
        assert server.config.max_layers == 3
        assert server.adapter.config.max_layers == 3

    def test_default_stream_matches_config(self, sim, net):
        config = QAConfig(layer_rate=5_000.0, max_layers=4)
        server = VideoServer(sim, net.pair(0)[0], "dst0", config)
        assert server.stream.n_layers == 4
        assert server.stream.layer_rate == 5_000.0

    def test_flow_id_exposed(self, sim, net):
        config = QAConfig(layer_rate=5_000.0)
        server = VideoServer(sim, net.pair(0)[0], "dst0", config)
        assert server.flow_id == server.rap.flow_id

    def test_active_layers_passthrough(self, sim, net):
        config = QAConfig(layer_rate=5_000.0)
        server = VideoServer(sim, net.pair(0)[0], "dst0", config)
        assert server.active_layers == server.adapter.active_layers == 1

    def test_stop_halts_everything(self, sim, net):
        src, dst = net.pair(0)
        config = QAConfig(layer_rate=5_000.0, max_layers=2)
        server = VideoServer(sim, src, dst.name, config)
        client = VideoClient(sim, dst, src.name, server.flow_id, config)
        sim.run(until=3.0)
        server.stop()
        sent = server.rap.stats.packets_sent
        sim.run(until=6.0)
        assert server.rap.stats.packets_sent == sent


class TestVideoClient:
    def test_packets_feed_playout(self, sim, net):
        src, dst = net.pair(0)
        config = QAConfig(layer_rate=5_000.0, max_layers=2,
                          startup_delay=0.5)
        server = VideoServer(sim, src, dst.name, config)
        client = VideoClient(sim, dst, src.name, server.flow_id, config)
        sim.run(until=5.0)
        assert client.playout.buffers.delivered(0) > 0
        assert client.stats.played_bytes > 0

    def test_stats_property(self, sim, net):
        src, dst = net.pair(0)
        config = QAConfig(layer_rate=5_000.0)
        server = VideoServer(sim, src, dst.name, config)
        client = VideoClient(sim, dst, src.name, server.flow_id, config)
        assert client.stats is client.playout.stats


class TestExamplesAreRunnable:
    def test_examples_compile(self):
        root = pathlib.Path(__file__).resolve().parents[2] / "examples"
        scripts = sorted(root.glob("*.py"))
        assert len(scripts) >= 4
        for script in scripts:
            source = script.read_text()
            compile(source, str(script), "exec")
            assert 'def main()' in source
            assert '__main__' in source
