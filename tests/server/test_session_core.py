"""The transport-agnostic session core: narrowing, taping, replay."""

import pytest

from repro.core.config import QAConfig
from repro.media.stream import LayeredStream
from repro.server.core import (SessionCore, SessionTape, SessionTransport,
                               TapeReplayTransport)
from repro.server.server import VideoServer
from repro.server.session import StreamingSession
from repro.sim.topology import Dumbbell, DumbbellConfig
from repro.sim.trace import PeriodicSampler
from repro.telemetry import TelemetryBus
from repro.telemetry.recorder import FlightRecorder
from repro.transport import RapSink, RapSource


@pytest.fixture
def config():
    return QAConfig(layer_rate=8_000.0, max_layers=4, k_max=2,
                    packet_size=500)


class TestConfigNarrowing:
    def test_narrowing_is_local_to_the_core(self, sim, config):
        net = Dumbbell(sim, DumbbellConfig(n_pairs=1))
        host, _ = net.pair(0)
        stream = LayeredStream(layer_rate=config.layer_rate, n_layers=2)
        server = VideoServer(sim, host, "c0", config, stream=stream)
        # The effective config narrowed to the stream's layer count...
        assert server.config.max_layers == 2
        # ...on a copy: the caller's object is never rebound or mutated.
        assert server.core.requested_config is config
        assert config.max_layers == 4

    def test_matching_stream_keeps_the_same_config_object(
            self, sim, config):
        core = SessionCore(config, now_fn=lambda: sim.now)
        assert core.config is config

    def test_pacer_shape_satisfies_transport_protocol(self):
        from repro.service.pacing import RapPacer
        pacer = RapPacer(500, now=0.0)
        assert isinstance(pacer, SessionTransport)


class TestTelemetryFlag:
    def _session(self, sim, config, enabled):
        net = Dumbbell(sim, DumbbellConfig(
            n_pairs=1, bottleneck_bandwidth=60_000))
        telemetry = None if enabled else TelemetryBus(sim, enabled=False)
        return StreamingSession(sim, *net.pair(0), config,
                                telemetry=telemetry)

    def test_instrumented_summary_keeps_historical_keys(
            self, sim, config):
        session = self._session(sim, config, enabled=True)
        sim.run(until=5.0)
        summary = session.result().summary()
        assert "mean_layers" in summary and "mean_rate" in summary
        assert "telemetry_enabled" not in summary

    def test_headless_summary_says_so_explicitly(self, sim, config):
        session = self._session(sim, config, enabled=False)
        sim.run(until=5.0)
        result = session.result()
        assert result.telemetry_enabled is False
        summary = result.summary()
        assert summary["telemetry_enabled"] is False
        assert "mean_layers" not in summary


class TestTapeReplay:
    def _run_recorded(self, sim, config):
        """A congested sim session recording both tape and decisions."""
        net = Dumbbell(sim, DumbbellConfig(
            n_pairs=2, bottleneck_bandwidth=30_000,
            queue_capacity_packets=15))
        src, dst = net.pair(0)
        tape = SessionTape()
        recorder = FlightRecorder()
        # Wire the core to the simulated transport directly (the hook
        # stays on the core only, so the log holds adapter decisions —
        # exactly what a replay reproduces).
        core = SessionCore(config, now_fn=lambda: sim.now,
                           on_event=recorder.hook("qa"), tape=tape)
        rap = RapSource(sim, src, dst.name,
                        packet_size=config.packet_size,
                        payload_picker=core.pick_payload,
                        on_ack=core.on_ack, on_loss=core.on_loss,
                        on_backoff=core.on_backoff)
        core.bind_transport(rap)
        PeriodicSampler(sim, config.drain_period,
                        lambda _now: core.tick())
        RapSink(sim, dst, src.name, rap.flow_id)
        # A competing flow forces backoffs and losses onto the tape.
        bg = RapSource(sim, *[net.pair(1)[0], net.pair(1)[1].name],
                       packet_size=config.packet_size)
        RapSink(sim, net.pair(1)[1], net.pair(1)[0].name, bg.flow_id)
        sim.run(until=15.0)
        return core, tape, recorder

    def test_replay_digest_matches_live_digest(self, sim, config):
        core, tape, live = self._run_recorded(sim, config)
        assert live.total_recorded > 0
        assert len(tape) > 0
        replayed = FlightRecorder()
        SessionCore.replay(tape, config,
                           on_event=replayed.hook("qa"))
        assert replayed.digest() == live.digest()
        assert replayed.total_recorded == live.total_recorded

    def test_replay_reaches_the_same_final_state(self, sim, config):
        core, tape, _ = self._run_recorded(sim, config)
        # Hook-presence must match the recording (the adapter reads the
        # clock when emitting events), so replay with a sink too.
        twin = SessionCore.replay(tape, config,
                                  on_event=FlightRecorder().hook("qa"))
        assert twin.active_layers == core.active_layers
        assert twin.adapter.buffer_levels() == \
            core.adapter.buffer_levels()
        assert len(twin.adapter.metrics.drops) == \
            len(core.adapter.metrics.drops)

    def test_diverging_replay_fails_loudly(self, config):
        tape = SessionTape(calls=[("tick",), ("tick",)],
                           clock=[0.1], rates=[], slopes=[])
        with pytest.raises(IndexError, match="replay diverged"):
            SessionCore.replay(tape, config)

    def test_replay_transport_pops_in_order(self):
        tape = SessionTape(rates=[1.0, 2.0], slopes=[3.0])
        fake = TapeReplayTransport(tape)
        assert fake.rate == 1.0
        assert fake.slope == 3.0
        assert fake.rate == 2.0
        with pytest.raises(IndexError):
            _ = fake.rate


class TestSpanHook:
    """Tracing hooks on the core: spans record, replays stay intact."""

    def _traced_run(self, sim, config, spans):
        from repro.telemetry.tracing import TraceContext
        net = Dumbbell(sim, DumbbellConfig(
            n_pairs=2, bottleneck_bandwidth=30_000,
            queue_capacity_packets=15))
        src, dst = net.pair(0)
        tape = SessionTape()
        recorder = FlightRecorder()
        context = TraceContext.derive(1, "core-test")
        core = SessionCore(
            config, now_fn=lambda: sim.now,
            on_event=recorder.hook("qa"), tape=tape,
            span_hook=(spans.span_hook("qa", context)
                       if spans is not None else None))
        rap = RapSource(sim, src, dst.name,
                        packet_size=config.packet_size,
                        payload_picker=core.pick_payload,
                        on_ack=core.on_ack, on_loss=core.on_loss,
                        on_backoff=core.on_backoff)
        core.bind_transport(rap)
        PeriodicSampler(sim, config.drain_period,
                        lambda _now: core.tick())
        RapSink(sim, dst, src.name, rap.flow_id)
        bg = RapSource(sim, *[net.pair(1)[0], net.pair(1)[1].name],
                       packet_size=config.packet_size)
        RapSink(sim, net.pair(1)[1], net.pair(1)[0].name, bg.flow_id)
        sim.run(until=10.0)
        return core, tape, recorder

    def test_spans_record_ticks_and_decisions(self, sim, config):
        from repro.telemetry.tracing import SpanRecorder
        spans = SpanRecorder()
        core, _, recorder = self._traced_run(sim, config, spans)
        names = {s.name for s in spans}
        assert "qa.tick" in names
        ticks = spans.spans_of(name="qa.tick")
        assert all(s.end >= s.start for s in ticks)
        # Every decision record has a twin qa.* instant span.
        decisions = sum(1 for s in spans if s.name != "qa.tick")
        assert decisions == recorder.total_recorded

    def test_traced_tape_replays_bit_identically_without_spans(
            self, sim, config):
        from repro.telemetry.tracing import SpanRecorder
        # The span hook reads the raw clock, never the taped one — so
        # a tape cut while tracing replays cleanly with tracing off.
        core, tape, live = self._traced_run(
            sim, config, SpanRecorder())
        assert live.total_recorded > 0
        replayed = FlightRecorder()
        twin = SessionCore.replay(tape, config,
                                  on_event=replayed.hook("qa"))
        assert replayed.digest() == live.digest()
        assert twin.active_layers == core.active_layers

    def test_span_hook_alone_still_feeds_decisions_into_spans(
            self, sim, config):
        from repro.telemetry.tracing import SpanRecorder, TraceContext
        spans = SpanRecorder()
        core = SessionCore(
            QAConfig(layer_rate=8_000.0, max_layers=2,
                     packet_size=500),
            now_fn=lambda: sim.now,
            span_hook=spans.span_hook(
                "qa", TraceContext.derive(2, "solo")))

        class _Still:
            rate = 8_000.0
            slope = 100.0

        core.bind_transport(_Still())
        # No real controller: just tick the idle core a few times.
        for _ in range(3):
            sim.run(until=sim.now + 0.1)
            core.tick()
        assert len(spans.spans_of(name="qa.tick")) == 3
