"""Integration tests: a full streaming session over the packet network."""

import pytest

from repro.core.config import QAConfig
from repro.server.session import StreamingSession
from repro.sim.topology import Dumbbell, DumbbellConfig
from repro.transport import RapSink, RapSource


@pytest.fixture
def setup(sim):
    """One QA session plus one background RAP flow on 60 KB/s."""
    net = Dumbbell(sim, DumbbellConfig(
        n_pairs=2, bottleneck_bandwidth=60_000,
        queue_capacity_packets=30))
    config = QAConfig(layer_rate=8_000.0, max_layers=4, k_max=2,
                      packet_size=500)
    session = StreamingSession(sim, *net.pair(0), config)
    bg_src, bg_dst = net.pair(1)
    bg = RapSource(sim, bg_src, bg_dst.name, packet_size=500)
    RapSink(sim, bg_dst, bg_src.name, bg.flow_id)
    return net, session


class TestEndToEnd:
    def test_session_streams_and_plays(self, sim, setup):
        _, session = setup
        sim.run(until=20.0)
        result = session.result()
        assert result.playout.played_bytes > 0
        assert result.tracer.get("rate").mean() > 0

    def test_layers_adapt_to_available_bandwidth(self, sim, setup):
        _, session = setup
        sim.run(until=30.0)
        layers = session.tracer.get("layers")
        # Fair share ~30 KB/s at C=8 KB/s: between 2 and 4 layers.
        assert 1.5 < layers.window(10.0, 30.0).time_average() <= 4.0

    def test_no_receiver_stalls(self, sim, setup):
        _, session = setup
        sim.run(until=30.0)
        assert session.result().playout.stall_count == 0

    def test_buffers_are_base_heavy(self, sim, setup):
        _, session = setup
        sim.run(until=30.0)
        t = session.tracer
        assert t.get("buffer_L0").mean() >= t.get("buffer_L2").mean()

    def test_server_estimate_tracks_receiver(self, sim, setup):
        _, session = setup
        sim.run(until=20.0)
        t = session.tracer
        est = t.get("buffer_est_L0").mean()
        actual = t.get("buffer_L0").mean()
        # Send-time crediting leads by at most in-flight + loss lag.
        assert est == pytest.approx(actual, rel=0.5, abs=4000)

    def test_consumption_stays_at_or_below_rate_on_average(
            self, sim, setup):
        _, session = setup
        sim.run(until=30.0)
        t = session.tracer
        # Long-run: you cannot consume more than you receive.
        assert (t.get("consumption").time_average()
                <= t.get("rate").time_average() * 1.25)

    def test_result_summary_fields(self, sim, setup):
        _, session = setup
        sim.run(until=10.0)
        summary = session.result().summary()
        for key in ("drops", "adds", "mean_layers", "mean_rate",
                    "stalls_receiver", "gap_bytes"):
            assert key in summary

    def test_stop_halts_traffic(self, sim, setup):
        _, session = setup
        sim.run(until=5.0)
        session.stop()
        sent = session.server.rap.stats.packets_sent
        sim.run(until=8.0)
        assert session.server.rap.stats.packets_sent == sent

    def test_send_rates_sum_to_total_rate(self, sim, setup):
        _, session = setup
        sim.run(until=20.0)
        t = session.tracer
        per_layer = sum(t.get(f"send_rate_L{i}").time_average()
                        for i in range(4))
        total = t.get("rate").time_average()
        assert per_layer == pytest.approx(total, rel=0.25)

    def test_events_logged(self, sim, setup):
        _, session = setup
        sim.run(until=30.0)
        kinds = {kind for _, kind, _ in session.tracer.events}
        assert "playout_start" in kinds
        assert "add" in kinds


class TestAgainstTcp:
    def test_qa_flow_coexists_with_tcp(self, sim):
        from repro.transport import TcpSink, TcpSource
        net = Dumbbell(sim, DumbbellConfig(
            n_pairs=2, bottleneck_bandwidth=60_000,
            queue_capacity_packets=30))
        config = QAConfig(layer_rate=8_000.0, max_layers=4, k_max=2,
                          packet_size=500)
        session = StreamingSession(sim, *net.pair(0), config)
        tcp_src, tcp_dst = net.pair(1)
        tcp = TcpSource(sim, tcp_src, tcp_dst.name)
        tcp_sink = TcpSink(sim, tcp_dst, tcp_src.name, tcp.flow_id)
        sim.run(until=30.0)
        qa_rate = session.tracer.get("rate").time_average()
        tcp_rate = tcp_sink.stats.bytes_received / 30.0
        # Neither starves (TCP-friendliness in the broad sense).
        assert qa_rate > 5_000
        assert tcp_rate > 5_000
