"""Feedback-path tests: the server's receiver-buffer estimate.

The adapter never sees the client's buffers directly — it reconstructs
them from the feedback mode: ``"ack"`` credits bytes when the ACK
returns, ``"send"`` credits at transmission and debits on detected loss,
``"oracle"`` credits at transmission and ignores losses entirely. These
tests run the real packet path and compare the estimate against the
client's actual buffer occupancy, sample by sample.
"""

from __future__ import annotations

import pytest

from repro.core.config import QAConfig
from repro.server.session import StreamingSession
from repro.sim.topology import Dumbbell, DumbbellConfig

MAX_LAYERS = 4
PACKET = 500


def run_session(sim, feedback: str, duration: float = 30.0):
    """One QA session alone on a 40 KB/s dumbbell (losses self-induced)."""
    net = Dumbbell(sim, DumbbellConfig(
        n_pairs=1, bottleneck_bandwidth=40_000,
        queue_capacity_packets=30))
    config = QAConfig(layer_rate=8_000.0, max_layers=MAX_LAYERS, k_max=2,
                      packet_size=PACKET, feedback=feedback)
    session = StreamingSession(sim, *net.pair(0), config)
    sim.run(until=duration)
    return session


def estimate_gaps(session) -> list[float]:
    """Per-sample (estimate - actual) over all layers' buffers."""
    tracer = session.tracer
    actual = [tracer.get(f"buffer_L{i}") for i in range(MAX_LAYERS)]
    estimate = [tracer.get(f"buffer_est_L{i}") for i in range(MAX_LAYERS)]
    gaps = []
    for sample in range(len(actual[0].times)):
        act = sum(series.values[sample] for series in actual)
        est = sum(series.values[sample] for series in estimate)
        gaps.append(est - act)
    return gaps


class TestAckFeedback:
    def test_estimate_lags_by_at_most_one_rtt_of_deliveries(self, sim):
        """ACK crediting trails reality by the ACK's return trip: the
        shortfall can never exceed what was delivered in the last RTT."""
        session = run_session(sim, "ack")
        gaps = estimate_gaps(session)
        peak_rate = max(session.tracer.get("rate").values)
        one_rtt_of_deliveries = peak_rate * session.server.rap.srtt
        worst_lag = -min(gaps)
        assert worst_lag <= one_rtt_of_deliveries + PACKET

    def test_estimate_never_runs_ahead_of_the_receiver(self, sim):
        """ACK mode only credits confirmed bytes, so any overshoot is
        bounded by server/client consumption-clock skew (sub-packet)."""
        session = run_session(sim, "ack")
        assert max(estimate_gaps(session)) <= PACKET


class TestModeOrdering:
    def test_oracle_is_the_optimistic_upper_bound(self, sim):
        """Oracle ignores losses: its estimate only ever runs ahead, and
        by far more than the ACK path's worst-case lead."""
        oracle = run_session(sim, "oracle")
        oracle_gaps = estimate_gaps(oracle)
        assert min(oracle_gaps) >= -PACKET
        assert max(oracle_gaps) > MAX_LAYERS * PACKET

    def test_ack_tracks_tighter_than_send_and_oracle(self, sim):
        """The |estimate - actual| envelope orders ack < send < oracle."""
        envelope = {}
        for mode in ("ack", "send", "oracle"):
            sim_mode = type(sim)()
            session = run_session(sim_mode, mode)
            envelope[mode] = max(abs(g) for g in estimate_gaps(session))
        assert envelope["ack"] < envelope["send"] < envelope["oracle"]


def test_summary_degrades_without_telemetry(sim):
    """Headless sessions still summarize transport metrics; the
    tracer-derived keys are simply absent."""
    from repro.telemetry import TelemetryBus

    net = Dumbbell(sim, DumbbellConfig(
        n_pairs=1, bottleneck_bandwidth=40_000,
        queue_capacity_packets=30))
    config = QAConfig(layer_rate=8_000.0, max_layers=MAX_LAYERS, k_max=2,
                      packet_size=PACKET)
    session = StreamingSession(sim, *net.pair(0), config,
                               telemetry=TelemetryBus(sim, enabled=False))
    sim.run(until=10.0)
    summary = session.result().summary()
    assert "drops" in summary and "stalls_receiver" in summary
    assert "mean_layers" not in summary
    assert "mean_rate" not in summary
    with pytest.raises(KeyError, match="no traced series"):
        session.tracer.get("rate")
