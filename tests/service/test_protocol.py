"""Wire-format roundtrips and malformed-datagram rejection."""

import pytest

from repro.service import protocol


class TestRoundtrips:
    def test_hello(self):
        frame = protocol.decode(
            protocol.encode_hello(7, {"want": "video"}))
        assert frame == protocol.HelloFrame(7, {"want": "video"})

    def test_welcome(self):
        frame = protocol.decode(
            protocol.encode_welcome(3, {"layer_rate": 2500.0}))
        assert frame == protocol.WelcomeFrame(3, {"layer_rate": 2500.0})

    def test_data(self):
        wire = protocol.encode_data(3, 41, 2, 5, 1.25, 500)
        assert len(wire) == 500
        frame = protocol.decode(wire)
        assert frame == protocol.DataFrame(3, 41, 2, 5, 1.25, size=500)

    def test_ack(self):
        frame = protocol.decode(protocol.encode_ack(3, 41, 1.25))
        assert frame == protocol.AckFrame(3, 41, 1.25)

    def test_fin(self):
        assert protocol.decode(
            protocol.encode_fin(9)) == protocol.FinFrame(9)

    def test_fin_ack(self):
        frame = protocol.decode(
            protocol.encode_fin_ack(9, {"adds": [[1.0, 1]]}))
        assert frame == protocol.FinAckFrame(9, {"adds": [[1.0, 1]]})

    def test_reject(self):
        frame = protocol.decode(protocol.encode_reject("server full"))
        assert frame == protocol.RejectFrame("server full")


class TestDataPadding:
    def test_padded_to_nominal_size(self):
        for size in (protocol.MIN_PACKET_SIZE, 100, 1000):
            assert len(protocol.encode_data(1, 0, 0, 1, 0.0, size)) \
                == size

    def test_size_below_overhead_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.encode_data(1, 0, 0, 1, 0.0,
                                 protocol.DATA_OVERHEAD - 1)


class TestMalformed:
    @pytest.mark.parametrize("datagram", [
        b"",
        b"\x00",
        b"garbage-not-a-frame",
        b"\x00\x00\x01\x03",               # wrong magic
        b"\x52\x41\x02\x03",               # wrong version
        b"\x52\x41\x01\x63",               # unknown frame type
        b"\x52\x41\x01\x03\x00\x00",       # truncated DATA
        b"\x52\x41\x01\x04\x00\x00\x00\x01",  # malformed ACK
        protocol.encode_hello(1, {})[:6],  # truncated HELLO
    ])
    def test_raises_protocol_error(self, datagram):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(datagram)

    def test_non_object_json_body_rejected(self):
        wire = (protocol.encode_welcome(1, {})[:8] + b"[1,2]")
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(wire)

    def test_reject_without_reason_rejected(self):
        wire = (protocol.encode_reject("x")[:4] + b"{}")
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(wire)
