"""The sans-IO RAP pacer under a scripted clock."""

import pytest

from repro.service.pacing import RapPacer


def make(now=0.0, **kw):
    kw.setdefault("srtt_init", 0.2)
    return RapPacer(500, now, **kw)


def drain_sends(pacer, now, layer=0):
    """Consume every due transmission opportunity at ``now``."""
    seqs = []
    while pacer.send_due(now):
        seqs.append(pacer.register_send(now, {"layer": layer}, 500))
        now += pacer.ipg
    return seqs


class TestRates:
    def test_initial_rate_is_one_packet_per_srtt(self):
        pacer = make()
        assert pacer.rate == pytest.approx(500 / 0.2)
        assert pacer.ipg == pytest.approx(0.2)

    def test_additive_increase_once_per_srtt(self):
        pacer = make()
        r0 = pacer.rate
        pacer.advance(0.2)
        assert pacer.rate == pytest.approx(r0 + 500 / 0.2)
        pacer.advance(0.61)  # two more srtt periods elapsed
        assert pacer.rate == pytest.approx(r0 + 3 * 500 / 0.2)

    def test_max_rate_clamps_the_ramp(self):
        pacer = make(max_rate=5000.0)
        pacer.advance(10.0)
        assert pacer.rate == 5000.0

    def test_slope_is_packet_over_srtt_squared(self):
        pacer = make()
        assert pacer.slope == pytest.approx(500 / 0.2 ** 2)


class TestSending:
    def test_register_send_spaces_by_ipg(self):
        pacer = make()
        assert pacer.send_due(0.0)
        seq = pacer.register_send(0.0, {"layer": 0}, 500)
        assert seq == 0
        assert not pacer.send_due(pacer.ipg / 2)
        assert pacer.send_due(pacer.ipg)
        assert seq in pacer.outstanding

    def test_skip_send_burns_the_slot_without_a_seq(self):
        pacer = make()
        pacer.skip_send(0.0)
        assert pacer.next_seq == 0
        assert not pacer.outstanding
        assert not pacer.send_due(pacer.ipg / 2)

    def test_next_deadline_is_the_earliest_timer(self):
        pacer = make()
        assert pacer.next_deadline(0.0) <= min(0.2, pacer.rto / 2)


class TestFeedback:
    def test_ack_delivers_and_updates_rtt(self):
        pacer = make()
        pacer.register_send(0.0, {"layer": 1}, 500)
        actions = pacer.on_ack(0, echo_ts=0.0, now=0.1)
        assert actions.acked == [(0, {"layer": 1}, 500)]
        assert not actions.lost
        assert pacer.srtt < 0.2  # sample 0.1 pulled the estimate down

    def test_srtt_never_drops_below_the_floor(self):
        pacer = make(srtt_floor=0.02)
        for seq in range(50):
            pacer.register_send(seq * 0.01, {"layer": 0}, 500)
            pacer.on_ack(seq, echo_ts=seq * 0.01,
                         now=seq * 0.01 + 1e-5)  # microsecond loopback
        # Converged onto (never through) the floor.
        assert 0.02 <= pacer.srtt < 0.025

    def test_hole_detection_needs_three_newer_acks(self):
        pacer = make()
        for seq in range(5):
            pacer.register_send(seq * 0.01, {"layer": 0}, 500)
        # Two newer ACKs leave seq 0 outstanding but inside the window.
        for seq in (1, 2):
            assert not pacer.on_ack(seq, None, 0.1).lost
        actions = pacer.on_ack(3, None, 0.11)  # third newer ACK: hole
        assert [s for s, _, _ in actions.lost] == [0]
        assert actions.backoff_rate == pytest.approx(pacer.rate)
        assert pacer.backoffs == 1

    def test_one_backoff_per_congestion_event(self):
        pacer = make()
        for seq in range(8):
            pacer.register_send(seq * 0.01, {"layer": 0}, 500)
        first = pacer.on_ack(5, None, 0.1)   # 0,1,2 lost together
        assert len(first.lost) == 3
        assert first.backoff_rate is not None
        # 3 and 4 were sent before the backoff: same congestion event.
        second = pacer.on_ack(7, None, 0.11)
        assert [s for s, _, _ in second.lost] == [3, 4]
        assert second.backoff_rate is None
        assert pacer.backoffs == 1

    def test_timeout_backstop_flushes_outstanding(self):
        pacer = make()
        pacer.register_send(0.0, {"layer": 2}, 500)
        actions = pacer.advance(pacer.rto + 1.0)
        assert actions.timed_out
        assert [s for s, _, _ in actions.lost] == [0]
        # The halved rate is what the pacer now runs at (advance also
        # ran its additive-increase catch-up first, so compare to the
        # post-step value rather than the pre-call rate).
        assert actions.backoff_rate == pacer.rate
        assert pacer.timeouts == 1
        assert not pacer.outstanding

    def test_quiet_idle_is_not_a_timeout(self):
        pacer = make()
        actions = pacer.advance(30.0)  # nothing outstanding
        assert not actions.timed_out
        assert pacer.timeouts == 0

    def test_negative_rtt_sample_ignored(self):
        pacer = make()
        pacer.register_send(0.0, {"layer": 0}, 500)
        pacer.on_ack(0, echo_ts=5.0, now=0.1)  # skewed echo
        assert pacer.srtt == pytest.approx(0.2)


class TestValidation:
    def test_bad_packet_size(self):
        with pytest.raises(ValueError):
            RapPacer(0, 0.0)

    def test_bad_srtt_floor(self):
        with pytest.raises(ValueError):
            RapPacer(500, 0.0, srtt_floor=0.0)
