"""Loop-stall sanitizer: lag sampling, stall counting, task census.

No pytest-asyncio in the toolchain; each test drives its own event
loop through ``asyncio.run`` (see test_loopback.py). Stall tests use
a deliberate ``time.sleep`` inside the loop -- the exact pathology
RL013 bans from src -- to prove the runtime side catches what the
static side cannot see.
"""

import asyncio
import time

from repro.service.sanitizer import LoopSanitizer, SanitizerConfig
from repro.telemetry.metrics import MetricsRegistry

#: A fast heartbeat so tests finish in tens of milliseconds.
FAST = SanitizerConfig(interval=0.01, stall_threshold=0.02)


class TestLagSampling:
    def test_idle_loop_reports_no_stalls(self):
        async def run():
            sanitizer = LoopSanitizer(config=FAST)
            await sanitizer.start()
            await asyncio.sleep(0.08)
            await sanitizer.stop()
            return sanitizer.report()

        report = asyncio.run(run())
        assert report["lag_samples"] >= 3
        assert report["stalls"] == 0
        assert report["leaked_tasks"] == 0
        assert report["lag_p99"] < FAST.stall_threshold

    def test_blocking_callback_registers_a_stall(self):
        async def run():
            sanitizer = LoopSanitizer(config=FAST)
            await sanitizer.start()
            await asyncio.sleep(0.02)  # let the heartbeat settle in
            time.sleep(0.08)  # hold the loop across several beats
            await asyncio.sleep(0.02)
            await sanitizer.stop()
            return sanitizer.report()

        report = asyncio.run(run())
        assert report["stalls"] >= 1
        assert report["lag_max"] >= 0.05

    def test_stop_is_idempotent_and_start_once(self):
        async def run():
            sanitizer = LoopSanitizer(config=FAST)
            await sanitizer.start()
            first = sanitizer._task
            await sanitizer.start()  # second start is a no-op
            assert sanitizer._task is first
            await sanitizer.stop()
            await sanitizer.stop()  # second stop is a no-op
            return sanitizer.report()

        report = asyncio.run(run())
        assert report["leaked_tasks"] == 0


class TestTaskCensus:
    def test_orphan_task_is_reported_leaked(self):
        async def run():
            sanitizer = LoopSanitizer(config=FAST)
            await sanitizer.start()
            orphan = asyncio.get_running_loop().create_task(
                asyncio.sleep(30.0), name="orphan-worker"
            )
            await asyncio.sleep(0.02)
            await sanitizer.stop()
            report = sanitizer.report()
            orphan.cancel()  # clean up so asyncio.run can exit quietly
            try:
                await orphan
            except asyncio.CancelledError:
                pass
            return report

        report = asyncio.run(run())
        assert report["leaked_tasks"] == 1
        assert report["leaked_task_names"] == ["orphan-worker"]

    def test_baseline_tasks_are_not_leaks(self):
        async def run():
            preexisting = asyncio.get_running_loop().create_task(
                asyncio.sleep(30.0), name="preexisting"
            )
            sanitizer = LoopSanitizer(config=FAST)
            await sanitizer.start()  # baseline snapshots the task above
            await asyncio.sleep(0.02)
            await sanitizer.stop()
            report = sanitizer.report()
            preexisting.cancel()
            try:
                await preexisting
            except asyncio.CancelledError:
                pass
            return report

        report = asyncio.run(run())
        assert report["leaked_tasks"] == 0

    def test_completed_tasks_are_not_leaks(self):
        async def run():
            sanitizer = LoopSanitizer(config=FAST)
            await sanitizer.start()
            done = asyncio.get_running_loop().create_task(
                asyncio.sleep(0), name="short-lived"
            )
            await done
            await asyncio.sleep(0.02)
            await sanitizer.stop()
            return sanitizer.report()

        report = asyncio.run(run())
        assert report["leaked_tasks"] == 0


class TestMetricsExport:
    def test_lag_and_stalls_reach_the_registry(self):
        registry = MetricsRegistry(enabled=True)

        async def run():
            sanitizer = LoopSanitizer(config=FAST, metrics=registry)
            await sanitizer.start()
            await asyncio.sleep(0.02)
            time.sleep(0.08)
            await asyncio.sleep(0.02)  # let the lagged beat record
            await sanitizer.stop()
            return sanitizer.report()

        report = asyncio.run(run())
        text = registry.to_prometheus()
        assert "service_loop_lag_seconds" in text
        assert "service_loop_stalls_total" in text
        assert "service_leaked_tasks 0" in text
        assert report["stalls"] >= 1

    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry(enabled=False)

        async def run():
            sanitizer = LoopSanitizer(config=FAST, metrics=registry)
            await sanitizer.start()
            await asyncio.sleep(0.03)
            await sanitizer.stop()
            return sanitizer.report()

        report = asyncio.run(run())
        assert report["lag_samples"] >= 1  # sampling itself still works
        assert registry.to_prometheus() == ""
