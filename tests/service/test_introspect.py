"""Live introspection endpoints: /metrics, /sessions, /healthz."""

import asyncio
import json

from repro.core.config import QAConfig
from repro.service.client import LoadFleet
from repro.service.introspect import IntrospectionServer
from repro.service.sanitizer import LoopSanitizer
from repro.service.server import ServiceConfig, StreamingService

QA = QAConfig(layer_rate=4000.0, max_layers=3, packet_size=200,
              startup_delay=0.5, max_buffer_seconds=4.0)


def service_config(**kw):
    kw.setdefault("qa", QA)
    return ServiceConfig(**kw)


async def fetch(port, path, method="GET"):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        f"{method} {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        key, _, value = line.partition(":")
        headers[key.strip().lower()] = value.strip()
    return status, headers, body


def check_prometheus_exposition(text):
    """Every line is a comment or a ``name{labels} value`` sample."""
    families = 0
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE"):
            families += 1
            continue
        if line.startswith("#"):
            continue
        name_part, _, value = line.rpartition(" ")
        assert name_part, f"sample line without a value: {line!r}"
        float(value)  # the sample value must parse
    assert families > 0, "no metric families in exposition"


class TestEndpoints:
    def test_metrics_serves_prometheus_exposition(self):
        async def run():
            service = await StreamingService.start(
                service_config(collect_metrics=True))
            intro = await IntrospectionServer.start(service)
            try:
                fleet = LoadFleet("127.0.0.1", service.port,
                                  sessions=2, duration=0.8, spread=0.1)
                task = asyncio.create_task(fleet.run())
                await asyncio.sleep(0.4)
                status, headers, body = await fetch(
                    intro.port, "/metrics")
                await task
            finally:
                await intro.close()
                await service.close()
            return status, headers, body

        status, headers, body = asyncio.run(run())
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        text = body.decode()
        check_prometheus_exposition(text)
        assert "service_acks_received_total" in text

    def test_metrics_404_without_a_registry(self):
        async def run():
            service = await StreamingService.start(service_config())
            intro = await IntrospectionServer.start(service)
            try:
                return await fetch(intro.port, "/metrics")
            finally:
                await intro.close()
                await service.close()

        status, _, body = asyncio.run(run())
        assert status == 404
        assert "metrics" in json.loads(body)["error"]

    def test_sessions_snapshot_schema(self):
        async def run():
            service = await StreamingService.start(
                service_config(trace_spans=True))
            intro = await IntrospectionServer.start(service)
            try:
                fleet = LoadFleet("127.0.0.1", service.port,
                                  sessions=2, duration=1.0,
                                  spread=0.1, trace_spans=True)
                task = asyncio.create_task(fleet.run())
                await asyncio.sleep(0.6)
                status, headers, body = await fetch(
                    intro.port, "/sessions")
                await task
            finally:
                await intro.close()
                await service.close()
            return status, headers, body

        status, headers, body = asyncio.run(run())
        assert status == 200
        assert headers["content-type"].startswith("application/json")
        snap = json.loads(body)
        assert set(snap) >= {"now", "sessions", "counters", "spans"}
        assert len(snap["sessions"]) == 2
        for entry in snap["sessions"]:
            assert set(entry) == {
                "id", "label", "age", "active_layers", "rate", "srtt",
                "buffered_bytes", "data_sent", "queue_drops", "done",
                "trace_id"}
            assert entry["active_layers"] >= 1
            assert entry["rate"] > 0
            assert entry["buffered_bytes"] >= 0
            assert isinstance(entry["trace_id"], str)
        assert snap["spans"]["recorded"] > 0
        assert snap["counters"]["sessions_started"] == 2

    def test_healthz_green_while_serving(self):
        async def run():
            service = await StreamingService.start(service_config())
            sanitizer = LoopSanitizer()
            await sanitizer.start()
            intro = await IntrospectionServer.start(
                service, sanitizer=sanitizer, max_lag_p99=10.0)
            try:
                await asyncio.sleep(0.3)  # accumulate lag samples
                return await fetch(intro.port, "/healthz")
            finally:
                await intro.close()
                await service.close()
                await sanitizer.stop()

        status, _, body = asyncio.run(run())
        assert status == 200
        report = json.loads(body)
        assert report["ok"] is True
        assert report["serving"] is True
        assert report["sanitizer"]["lag_samples"] > 0

    def test_healthz_degrades_on_lag_budget_breach(self):
        async def run():
            service = await StreamingService.start(service_config())
            sanitizer = LoopSanitizer()
            # Forged lag history: the gate reads report() output, so
            # injecting samples tests the 503 path deterministically.
            sanitizer.lag_samples.extend([0.5] * 20)
            intro = await IntrospectionServer.start(
                service, sanitizer=sanitizer, max_lag_p99=0.001)
            try:
                return await fetch(intro.port, "/healthz")
            finally:
                await intro.close()
                await service.close()

        status, _, body = asyncio.run(run())
        assert status == 503
        assert json.loads(body)["ok"] is False

    def test_unknown_path_404_lists_endpoints(self):
        async def run():
            service = await StreamingService.start(service_config())
            intro = await IntrospectionServer.start(service)
            try:
                return await fetch(intro.port, "/debug/pprof")
            finally:
                await intro.close()
                await service.close()

        status, _, body = asyncio.run(run())
        assert status == 404
        assert json.loads(body)["endpoints"] == [
            "/metrics", "/sessions", "/healthz"]

    def test_non_get_is_405(self):
        async def run():
            service = await StreamingService.start(service_config())
            intro = await IntrospectionServer.start(service)
            try:
                return await fetch(intro.port, "/metrics",
                                   method="POST")
            finally:
                await intro.close()
                await service.close()

        status, _, _ = asyncio.run(run())
        assert status == 405

    def test_listener_counts_requests_and_closes_cleanly(self):
        async def run():
            service = await StreamingService.start(service_config())
            intro = await IntrospectionServer.start(service)
            try:
                for _ in range(3):
                    await fetch(intro.port, "/healthz")
            finally:
                await intro.close()
                await service.close()
            return intro.requests_served

        assert asyncio.run(run()) == 3
