"""End-to-end loopback integration: server + fleet on real sockets.

No pytest-asyncio in the toolchain; each test drives its own event
loop through ``asyncio.run`` — which doubles as a shutdown check,
since ``asyncio.run`` complains about tasks still pending at exit.
"""

import asyncio

import pytest

from repro.core.config import QAConfig
from repro.service import protocol
from repro.service.client import LoadFleet, metrics_from_summary
from repro.service.impairment import ImpairmentConfig
from repro.service.results import fleet_result, render_fleet_report
from repro.service.server import ServiceConfig, StreamingService

#: A small, fast profile: 3 layers at 4 KB/s, 200-byte packets.
QA = QAConfig(layer_rate=4000.0, max_layers=3, packet_size=200,
              startup_delay=0.5, max_buffer_seconds=4.0)


def service_config(**kw):
    kw.setdefault("qa", QA)
    return ServiceConfig(**kw)


async def _serve_fleet(config, **fleet_kw):
    service = await StreamingService.start(config)
    try:
        fleet = LoadFleet("127.0.0.1", service.port, **fleet_kw)
        results = await fleet.run()
    finally:
        await service.close()
    leaked = [t for t in asyncio.all_tasks()
              if t is not asyncio.current_task()]
    return service, results, leaked


class _Probe(asyncio.DatagramProtocol):
    """A raw frame-level client for protocol-edge tests."""

    def __init__(self):
        self.frames = []
        self.transport = None

    def connection_made(self, transport):
        self.transport = transport

    def datagram_received(self, data, addr):
        self.frames.append(protocol.decode(data))

    def of(self, cls):
        return [f for f in self.frames if isinstance(f, cls)]


async def _probe(port):
    loop = asyncio.get_running_loop()
    _, probe = await loop.create_datagram_endpoint(
        _Probe, remote_addr=("127.0.0.1", port))
    return probe


class TestEndToEnd:
    def test_fleet_streams_cleanly_on_unimpaired_loopback(self):
        async def run():
            return await _serve_fleet(
                service_config(), sessions=4, duration=2.0, spread=0.3)

        service, results, leaked = asyncio.run(run())
        assert [r.error for r in results] == [None] * 4
        assert all(r.bytes_received > 0 for r in results)
        assert sum(r.playout.stall_count for r in results) == 0
        assert leaked == []
        assert service.counters["sessions_started"] == 4
        assert service.counters["sessions_completed"] == 4
        assert service.sessions == {}

    def test_summary_rebuilds_adapter_metrics(self):
        async def run():
            return await _serve_fleet(
                service_config(), sessions=1, duration=2.0, spread=0.0)

        _, results, _ = asyncio.run(run())
        summary = results[0].server_summary
        metrics = metrics_from_summary(summary)
        assert len(metrics.adds) == len(summary["adds"])
        # A 2s unimpaired run climbs off the base layer.
        assert summary["active_layers"] >= 2
        session_result = results[0].to_session_result()
        assert session_result.telemetry_enabled
        assert session_result.summary()["mean_layers"] > 0

    def test_results_flow_through_scenario_shapes(self):
        async def run():
            return await _serve_fleet(
                service_config(), sessions=3, duration=2.0, spread=0.2)

        _, results, _ = asyncio.run(run())
        scenario = fleet_result(results, duration=2.0)
        assert len(scenario.qa_flows()) == 3
        assert 0.9 < scenario.fairness <= 1.0
        report = render_fleet_report(results, 2.0, scenario=scenario)
        assert "per-session QoE" in report
        for flow in scenario.flows:
            assert flow.mean_layers() > 0

    def test_impaired_fleet_reports_losses(self):
        async def run():
            return await _serve_fleet(
                service_config(), sessions=2, duration=2.5, spread=0.2,
                impairment=ImpairmentConfig(loss_rate=0.05), seed=11)

        service, results, _ = asyncio.run(run())
        assert all(r.ok for r in results)
        assert sum(r.dropped_random for r in results) > 0


class TestProtocolEdges:
    def test_server_full_rejects_with_reason(self):
        async def run():
            service = await StreamingService.start(
                service_config(max_sessions=1))
            try:
                fleet = LoadFleet("127.0.0.1", service.port,
                                  sessions=2, duration=1.0, spread=0.0)
                return service, await fleet.run()
            finally:
                await service.close()

        service, results = asyncio.run(run())
        errors = sorted(str(r.error) for r in results)
        assert errors[0] == "None"
        assert "rejected: server full" in errors[1]
        assert service.counters["sessions_rejected"] == 1

    def test_duplicate_hello_reuses_the_session(self):
        async def run():
            service = await StreamingService.start(service_config())
            probe = await _probe(service.port)
            try:
                probe.transport.sendto(protocol.encode_hello(1, {}))
                probe.transport.sendto(protocol.encode_hello(1, {}))
                await asyncio.sleep(0.2)
            finally:
                probe.transport.close()
                await service.close()
            return service, probe

        service, probe = asyncio.run(run())
        welcomes = probe.of(protocol.WelcomeFrame)
        assert len(welcomes) == 2
        assert welcomes[0].session_id == welcomes[1].session_id
        assert service.counters["sessions_started"] == 1

    def test_malformed_datagrams_are_counted_not_fatal(self):
        async def run():
            service = await StreamingService.start(service_config())
            probe = await _probe(service.port)
            try:
                probe.transport.sendto(b"garbage-not-a-frame")
                probe.transport.sendto(protocol.encode_hello(1, {}))
                await asyncio.sleep(0.2)
            finally:
                probe.transport.close()
                await service.close()
            return service, probe

        service, probe = asyncio.run(run())
        assert service.counters["malformed_frames"] == 1
        assert len(probe.of(protocol.WelcomeFrame)) == 1  # still alive

    def test_idle_session_is_reaped(self):
        async def run():
            service = await StreamingService.start(
                service_config(session_timeout=0.4))
            probe = await _probe(service.port)
            try:
                probe.transport.sendto(protocol.encode_hello(1, {}))
                await asyncio.sleep(1.2)  # never ACK anything
            finally:
                probe.transport.close()
                await service.close()
            return service

        service = asyncio.run(run())
        assert service.counters["sessions_expired"] == 1
        assert service.sessions == {}

    def test_fin_for_unknown_session_is_reacked(self):
        async def run():
            service = await StreamingService.start(service_config())
            probe = await _probe(service.port)
            try:
                probe.transport.sendto(protocol.encode_fin(999))
                await asyncio.sleep(0.2)
            finally:
                probe.transport.close()
                await service.close()
            return probe

        probe = asyncio.run(run())
        fin_acks = probe.of(protocol.FinAckFrame)
        assert len(fin_acks) == 1
        assert fin_acks[0].summary == {}

    def test_welcome_advertises_the_session_profile(self):
        async def run():
            service = await StreamingService.start(service_config())
            probe = await _probe(service.port)
            try:
                probe.transport.sendto(protocol.encode_hello(1, {}))
                await asyncio.sleep(0.2)
            finally:
                probe.transport.close()
                await service.close()
            return probe

        probe = asyncio.run(run())
        (welcome,) = probe.of(protocol.WelcomeFrame)
        assert welcome.config["layer_rate"] == QA.layer_rate
        assert welcome.config["max_layers"] == QA.max_layers
        assert welcome.config["packet_size"] == QA.packet_size


class TestObservability:
    def test_recorder_and_metrics_capture_the_run(self):
        async def run():
            config = service_config(record_decisions=True,
                                    collect_metrics=True)
            return await _serve_fleet(
                config, sessions=2, duration=2.0, spread=0.2)

        service, results, _ = asyncio.run(run())
        assert all(r.ok for r in results)
        assert service.decisions_recorded > 0
        kinds = {rec.kind for rec in service.recorder}
        assert "add" in kinds
        text = service.metrics.to_prometheus()
        assert "service_sessions_started_total 2" in text
        assert "service_feedback_latency_seconds" in text
        assert service.feedback_latencies

    def test_metrics_off_by_default(self):
        async def run():
            return await _serve_fleet(
                service_config(), sessions=1, duration=1.0, spread=0.0)

        service, _, _ = asyncio.run(run())
        assert service.metrics is None
        assert service.recorder is None
        assert service.decisions_recorded == 0


class TestServiceConfigValidation:
    def test_packet_size_must_fit_the_data_header(self):
        with pytest.raises(ValueError, match="packet_size"):
            ServiceConfig(qa=QAConfig(packet_size=8))

    def test_max_rate_scales_with_the_profile(self):
        config = service_config(rate_headroom=2.0)
        assert config.max_rate == 2.0 * QA.max_layers * QA.layer_rate
