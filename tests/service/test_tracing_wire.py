"""Distributed-trace context propagation across the service wire.

Each test drives its own event loop via ``asyncio.run`` (no
pytest-asyncio in the toolchain), mirroring test_loopback.py.
"""

import asyncio

import pytest

from repro.core.config import QAConfig
from repro.service import protocol
from repro.service.client import LoadFleet
from repro.service.server import ServiceConfig, StreamingService
from repro.telemetry.tracing import (SpanRecorder, TraceContext,
                                     merge_spans)

QA = QAConfig(layer_rate=4000.0, max_layers=3, packet_size=200,
              startup_delay=0.5, max_buffer_seconds=4.0)


def service_config(**kw):
    kw.setdefault("qa", QA)
    return ServiceConfig(**kw)


class _Probe(asyncio.DatagramProtocol):
    def __init__(self):
        self.frames = []
        self.transport = None

    def connection_made(self, transport):
        self.transport = transport

    def datagram_received(self, data, addr):
        self.frames.append(protocol.decode(data))

    def of(self, cls):
        return [f for f in self.frames if isinstance(f, cls)]


async def _probe(port):
    loop = asyncio.get_running_loop()
    _, probe = await loop.create_datagram_endpoint(
        _Probe, remote_addr=("127.0.0.1", port))
    return probe


class TestWireContext:
    def test_hello_frame_round_trips_trace_option(self):
        ctx = TraceContext.derive(5, "wire")
        datagram = protocol.encode_hello(
            7, {protocol.TRACE_KEY: ctx.to_wire()})
        frame = protocol.decode(datagram)
        assert isinstance(frame, protocol.HelloFrame)
        assert TraceContext.from_wire(frame.options) == ctx

    def test_untraced_hello_has_no_trace_key(self):
        frame = protocol.decode(protocol.encode_hello(7, {}))
        assert protocol.TRACE_KEY not in frame.options

    def test_welcome_echoes_client_context(self):
        async def run():
            service = await StreamingService.start(
                service_config(trace_spans=True))
            try:
                probe = await _probe(service.port)
                ctx = TraceContext.derive(1, "probe")
                probe.transport.sendto(protocol.encode_hello(
                    1, {protocol.TRACE_KEY: ctx.to_wire()}))
                await asyncio.sleep(0.2)
                return ctx, probe.of(protocol.WelcomeFrame), service
            finally:
                await service.close()

        ctx, welcomes, service = asyncio.run(run())
        assert welcomes
        echoed = TraceContext.from_wire(welcomes[0].config)
        assert echoed == ctx
        assert service.spans is not None
        assert ctx.trace_id in service.spans.trace_ids()

    def test_untraced_client_gets_server_derived_context(self):
        async def run():
            service = await StreamingService.start(
                service_config(trace_spans=True))
            try:
                probe = await _probe(service.port)
                probe.transport.sendto(protocol.encode_hello(2, {}))
                await asyncio.sleep(0.2)
                return probe.of(protocol.WelcomeFrame), service
            finally:
                await service.close()

        welcomes, service = asyncio.run(run())
        assert welcomes
        echoed = TraceContext.from_wire(welcomes[0].config)
        assert echoed is not None  # derived from the session id
        assert echoed == TraceContext.derive(
            welcomes[0].session_id, "service")

    def test_malformed_trace_option_does_not_kill_the_handshake(self):
        async def run():
            service = await StreamingService.start(
                service_config(trace_spans=True))
            try:
                probe = await _probe(service.port)
                probe.transport.sendto(protocol.encode_hello(
                    3, {protocol.TRACE_KEY: {"trace_id": "bogus"}}))
                await asyncio.sleep(0.2)
                return probe.of(protocol.WelcomeFrame)
            finally:
                await service.close()

        welcomes = asyncio.run(run())
        assert welcomes  # session established; bad context read as absent

    def test_untraced_service_still_echoes_client_context(self):
        # The echo acknowledges adoption of the client's ids even when
        # the server keeps no span recorder; recording is orthogonal.
        async def run():
            service = await StreamingService.start(service_config())
            try:
                probe = await _probe(service.port)
                ctx = TraceContext.derive(4, "probe")
                probe.transport.sendto(protocol.encode_hello(
                    4, {protocol.TRACE_KEY: ctx.to_wire()}))
                await asyncio.sleep(0.2)
                return probe.of(protocol.WelcomeFrame), service
            finally:
                await service.close()

        welcomes, service = asyncio.run(run())
        assert welcomes
        assert (TraceContext.from_wire(welcomes[0].config)
                == TraceContext.derive(4, "probe"))
        assert service.spans is None  # nothing was recorded

    def test_untraced_both_ends_omit_trace_from_welcome(self):
        async def run():
            service = await StreamingService.start(service_config())
            try:
                probe = await _probe(service.port)
                probe.transport.sendto(protocol.encode_hello(4, {}))
                await asyncio.sleep(0.2)
                return probe.of(protocol.WelcomeFrame)
            finally:
                await service.close()

        welcomes = asyncio.run(run())
        assert welcomes
        assert protocol.TRACE_KEY not in welcomes[0].config


class TestEndToEndTraces:
    def test_fleet_and_service_spans_share_trace_ids(self):
        async def run():
            spans = SpanRecorder()
            service = await StreamingService.start(
                service_config(trace_spans=True), spans=spans)
            try:
                fleet = LoadFleet(
                    "127.0.0.1", service.port, sessions=3,
                    duration=1.0, spread=0.2, trace_spans=True)
                results = await fleet.run()
            finally:
                await service.close()
            return results, fleet.spans, spans

        results, client_spans, server_spans = asyncio.run(run())
        assert all(r.ok for r in results)
        client_ids = set(client_spans.trace_ids())
        server_ids = set(server_spans.trace_ids())
        assert len(client_ids) == 3
        assert client_ids == server_ids
        # Expected deterministic ids from the fleet seed.
        assert client_ids == {
            TraceContext.derive(0, "fleet", i).trace_id
            for i in range(3)}

        merged = merge_spans(client_spans, server_spans)
        names = {s.name for s in merged}
        assert "client.session" in names
        assert "client.handshake" in names
        assert "client.recv" in names
        assert "session" in names  # server-side lifecycle span
        assert "qa.tick" in names  # server-side adapter spans
        for trace_id in client_ids:
            sources = {s.source for s in merged
                       if s.trace_id == trace_id}
            assert any(src.startswith("load") for src in sources)
            assert any(src.startswith("session") for src in sources)

    def test_client_session_span_carries_totals(self):
        async def run():
            service = await StreamingService.start(
                service_config(trace_spans=True))
            try:
                fleet = LoadFleet(
                    "127.0.0.1", service.port, sessions=1,
                    duration=1.0, spread=0.0, trace_spans=True)
                results = await fleet.run()
            finally:
                await service.close()
            return results, fleet.spans

        results, spans = asyncio.run(run())
        (result,) = results
        assert result.ok
        (session_span,) = spans.spans_of(name="client.session")
        assert session_span.fields["bytes"] == result.bytes_received
        assert session_span.fields["acks"] == result.acks_sent
        assert session_span.fields["error"] is None

    def test_tracing_off_records_nothing_anywhere(self):
        async def run():
            service = await StreamingService.start(service_config())
            try:
                fleet = LoadFleet(
                    "127.0.0.1", service.port, sessions=2,
                    duration=0.6, spread=0.1)
                results = await fleet.run()
            finally:
                await service.close()
            return results, fleet.spans, service.spans

        results, client_spans, server_spans = asyncio.run(run())
        assert all(r.ok for r in results)
        assert not client_spans.enabled
        assert len(client_spans) == 0
        assert server_spans is None
        assert merge_spans(client_spans, server_spans) == []
