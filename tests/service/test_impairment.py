"""The scripted loopback impairment shim."""

import pytest

from repro.service.impairment import Impairment, ImpairmentConfig
from repro.sim.rng import make_rng


class TestConfig:
    def test_default_is_inactive(self):
        assert not ImpairmentConfig().active

    @pytest.mark.parametrize("kwargs", [
        {"loss_rate": 0.1}, {"delay": 0.05}, {"jitter": 0.01},
        {"rate_limit": 1000.0},
    ])
    def test_any_knob_activates(self, kwargs):
        assert ImpairmentConfig(**kwargs).active

    @pytest.mark.parametrize("kwargs", [
        {"loss_rate": -0.1}, {"loss_rate": 1.0}, {"delay": -1.0},
        {"jitter": -1.0}, {"rate_limit": 0.0}, {"bucket_depth": 0.0},
        {"max_backlog": 0.0},
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ImpairmentConfig(**kwargs)


class TestLoss:
    def test_same_seed_same_pattern(self):
        cfg = ImpairmentConfig(loss_rate=0.3)
        outcomes = []
        for _ in range(2):
            shim = Impairment(cfg, make_rng(42))
            outcomes.append(
                [shim.admit(500, i * 0.01) is None for i in range(200)])
        assert outcomes[0] == outcomes[1]
        assert any(outcomes[0]) and not all(outcomes[0])

    def test_loss_rate_roughly_honored(self):
        shim = Impairment(ImpairmentConfig(loss_rate=0.25), make_rng(1))
        for i in range(2000):
            shim.admit(500, i * 0.001)
        assert shim.dropped_random == pytest.approx(500, rel=0.2)
        assert shim.delivered == 2000 - shim.dropped_random


class TestDelay:
    def test_fixed_delay_plus_bounded_jitter(self):
        cfg = ImpairmentConfig(delay=0.05, jitter=0.02)
        shim = Impairment(cfg, make_rng(3))
        delays = [shim.admit(500, i * 0.01) for i in range(100)]
        assert all(0.05 <= d <= 0.07 for d in delays)
        assert max(delays) > min(delays)  # jitter actually draws

    def test_no_impairment_means_zero_delay(self):
        shim = Impairment(ImpairmentConfig(), make_rng(0))
        assert shim.admit(500, 0.0) == 0.0


class TestTokenBucket:
    def test_within_bucket_passes_untouched(self):
        cfg = ImpairmentConfig(rate_limit=1000.0, bucket_depth=2000.0)
        shim = Impairment(cfg, make_rng(0))
        assert shim.admit(500, 0.0) == 0.0

    def test_backlog_beyond_cap_tail_drops(self):
        cfg = ImpairmentConfig(rate_limit=1000.0, bucket_depth=1000.0,
                               max_backlog=0.5)
        shim = Impairment(cfg, make_rng(0))
        assert shim.admit(1000, 0.0) == 0.0   # drains the bucket
        assert shim.admit(1000, 0.0) is None  # 1s backlog > 0.5s cap
        assert shim.dropped_backlog == 1

    def test_queueing_delay_tracks_the_backlog(self):
        cfg = ImpairmentConfig(rate_limit=1000.0, bucket_depth=1000.0,
                               max_backlog=5.0)
        shim = Impairment(cfg, make_rng(0))
        shim.admit(1000, 0.0)
        delay = shim.admit(500, 0.0)  # 500B behind an empty bucket
        assert delay == pytest.approx(0.5)

    def test_bucket_refills_over_time(self):
        cfg = ImpairmentConfig(rate_limit=1000.0, bucket_depth=1000.0,
                               max_backlog=0.25)
        shim = Impairment(cfg, make_rng(0))
        shim.admit(1000, 0.0)
        assert shim.admit(1000, 0.0) is None
        # A second later the bucket holds 1000 fresh bytes again.
        assert shim.admit(1000, 1.0) == 0.0
