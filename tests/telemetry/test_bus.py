"""Unit tests for the telemetry bus and its probes."""

from __future__ import annotations

import pytest

from repro.sim.link import Link
from repro.sim.queues import DropTailQueue
from repro.telemetry import Probe, QueueOccupancyProbe, TelemetryBus


class CountingProbe(Probe):
    """Records how often it was sampled and at what times."""

    def __init__(self, period: float = 0.1) -> None:
        super().__init__(period)
        self.times: list[float] = []

    def sample(self, now: float) -> None:
        self.times.append(now)
        assert self.bus is not None
        self.bus.record("count", now, float(len(self.times)))


class TestEnabledBus:
    def test_subscribe_schedules_a_sampler(self, sim):
        bus = TelemetryBus(sim)
        probe = CountingProbe(period=0.1)
        sampler = bus.subscribe(probe)
        assert sampler is not None
        sim.run(until=1.0)
        assert len(probe.times) == 11  # t = 0.0, 0.1, ..., 1.0
        assert bus.series("count").values[-1] == 11

    def test_decimate_stretches_the_period(self, sim):
        bus = TelemetryBus(sim, decimate=5)
        probe = CountingProbe(period=0.1)
        bus.subscribe(probe)
        sim.run(until=1.0)
        assert len(probe.times) == 3  # t = 0.0, 0.5, 1.0
        assert probe.dt == pytest.approx(0.5)

    def test_event_hook_logs_into_the_tracer(self, sim):
        bus = TelemetryBus(sim)
        hook = bus.event_hook()
        assert hook is not None
        hook(1.5, "add", {"layer": 2})
        assert bus.tracer.events == [(1.5, "add", {"layer": 2})]

    def test_series_raises_for_unknown_channel(self, sim):
        bus = TelemetryBus(sim)
        with pytest.raises(KeyError, match="no traced series"):
            bus.series("nope")

    def test_stop_halts_sampling(self, sim):
        bus = TelemetryBus(sim)
        probe = CountingProbe(period=0.1)
        bus.subscribe(probe)
        sim.run(until=0.5)
        bus.stop()
        seen = len(probe.times)
        sim.run(until=2.0)
        assert len(probe.times) == seen


class TestDisabledBus:
    def test_subscribe_registers_but_never_samples(self, sim):
        bus = TelemetryBus(sim, enabled=False)
        probe = CountingProbe()
        assert bus.subscribe(probe) is None
        assert bus.probes == [probe]
        sim.run(until=2.0)
        assert probe.times == []
        assert sim.events_processed == 0

    def test_record_and_log_event_are_dropped(self, sim):
        bus = TelemetryBus(sim, enabled=False)
        bus.record("rate", 0.0, 1.0)
        bus.log_event(0.0, "add", layer=1)
        assert bus.tracer.series == {}
        assert bus.tracer.events == []

    def test_event_hook_is_none(self, sim):
        assert TelemetryBus(sim, enabled=False).event_hook() is None


def test_decimate_must_be_positive(sim):
    with pytest.raises(ValueError, match="decimate"):
        TelemetryBus(sim, decimate=0)


def test_probe_period_must_be_positive():
    with pytest.raises(ValueError, match="period"):
        Probe(period=0.0)


def test_queue_occupancy_probe_channels(sim):
    link = Link(sim, bandwidth=10_000, delay=0.01,
                queue=DropTailQueue(4), name="l")
    bus = TelemetryBus(sim)
    bus.subscribe(QueueOccupancyProbe(link, name="hop0", period=0.1))
    sim.run(until=0.35)
    for channel in ("hop0_qlen", "hop0_qbytes", "hop0_drops"):
        assert len(bus.series(channel).times) == 4
