"""Tests for the shared streaming quantile digest."""

import json
import math

import pytest

from repro.sim.rng import make_rng
from repro.telemetry.digest import QuantileDigest, digest_of, percentile


def sorted_nearest_rank(samples, q):
    """The old per-module sorted-list convention the digest replaces."""
    ordered = sorted(samples)
    rank = int(round((q / 100.0) * (len(ordered) - 1)))
    return ordered[rank]


class TestQuantileDigest:
    def test_rejects_bad_grids(self):
        with pytest.raises(ValueError):
            QuantileDigest(lo=0.0)
        with pytest.raises(ValueError):
            QuantileDigest(lo=2.0, hi=1.0)
        with pytest.raises(ValueError):
            QuantileDigest(bins_per_decade=0)

    def test_empty_digest_quantile_is_zero(self):
        digest = QuantileDigest()
        assert digest.quantile(0.5) == 0.0
        assert digest.mean == 0.0
        assert digest.count == 0

    def test_extremes_are_exact(self):
        digest = digest_of([0.003, 7.5, 0.04, 120.0])
        assert digest.quantile(0.0) == 0.003
        assert digest.quantile(1.0) == 120.0
        assert digest.min == 0.003
        assert digest.max == 120.0
        assert digest.mean == pytest.approx(
            (0.003 + 7.5 + 0.04 + 120.0) / 4)

    def test_quantiles_track_sorted_list_within_bucket_error(self):
        rng = make_rng(202)
        samples = [rng.expovariate(1.0 / 0.05) + 1e-4
                   for _ in range(5000)]
        digest = digest_of(samples)
        for q in (10.0, 50.0, 90.0, 99.0):
            exact = sorted_nearest_rank(samples, q)
            approx = digest.quantile(q / 100.0)
            # one geometric bucket at 32/decade is a ~7.5% wide band;
            # representative = midpoint, so error <= ~3.7%.
            assert abs(approx - exact) / exact < 0.04

    def test_zeros_and_negatives_go_underflow_and_use_exact_min(self):
        digest = digest_of([0.0, -3.0, 5.0])
        assert digest.min == -3.0
        assert digest.quantile(0.0) == -3.0
        assert digest.count == 3

    def test_overflow_uses_exact_max(self):
        digest = digest_of([1e12, 1e13])
        assert digest.quantile(0.5) in (1e12, 1e13)
        assert digest.quantile(1.0) == 1e13

    def test_weighted_add(self):
        a = QuantileDigest()
        a.add(2.0, weight=10)
        b = QuantileDigest()
        for _ in range(10):
            b.add(2.0)
        assert a.count == b.count
        assert a.total == b.total
        assert a.to_dict() == b.to_dict()

    def test_merge_equals_concatenated_stream(self):
        rng = make_rng(7)
        xs = [rng.uniform(0.001, 10.0) for _ in range(400)]
        ys = [rng.uniform(0.001, 10.0) for _ in range(300)]
        merged = digest_of(xs).merge(digest_of(ys))
        together = digest_of(xs + ys)
        assert merged.to_dict() == together.to_dict()

    def test_merge_rejects_mismatched_grids(self):
        with pytest.raises(ValueError):
            QuantileDigest().merge(QuantileDigest(bins_per_decade=16))

    def test_dict_round_trip_is_exact(self):
        digest = digest_of([0.01, 0.5, 2.0, 1e11, -1.0])
        state = json.loads(json.dumps(digest.to_dict()))
        back = QuantileDigest.from_dict(state)
        assert back.to_dict() == digest.to_dict()
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            assert back.quantile(q) == digest.quantile(q)

    def test_two_same_input_digests_are_identical(self):
        xs = [0.1 * i + 0.001 for i in range(100)]
        assert digest_of(xs).to_dict() == digest_of(xs).to_dict()

    def test_summary_keys(self):
        summary = digest_of([1.0, 2.0, 3.0]).summary()
        assert set(summary) == {
            "count", "mean", "min", "p50", "p90", "p99", "max"}
        assert summary["count"] == 3.0
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0

    def test_memory_is_bounded_by_grid(self):
        digest = QuantileDigest()
        rng = make_rng(9)
        for _ in range(20000):
            digest.add(rng.uniform(1e-5, 1e8))
        assert len(digest._counts) <= digest._nbins + 2


class TestPercentileHelper:
    def test_empty_is_zero(self):
        assert percentile([], 99.0) == 0.0

    def test_endpoints_exact(self):
        xs = [5.0, 1.0, 3.0]
        assert percentile(xs, 0.0) == 1.0
        assert percentile(xs, 100.0) == 5.0

    def test_matches_old_convention_within_error(self):
        rng = make_rng(55)
        xs = [rng.uniform(0.001, 1.0) for _ in range(1000)]
        for q in (50.0, 90.0, 99.0):
            exact = sorted_nearest_rank(xs, q)
            assert math.isclose(percentile(xs, q), exact, rel_tol=0.04)

    def test_caller_supplied_digest_accumulates(self):
        digest = QuantileDigest()
        percentile([1.0, 2.0], 50.0, digest=digest)
        out = percentile([3.0], 100.0, digest=digest)
        assert digest.count == 3
        assert out == 3.0
