"""Tests for repro.telemetry.tracing: contexts, spans, recorder, merge."""

import json

import pytest

from repro.telemetry.exporters import chrome_trace
from repro.telemetry.tracing import (Span, SpanRecorder, TraceContext,
                                     merge_spans)


class TestTraceContext:
    def test_derive_is_deterministic(self):
        a = TraceContext.derive(42, "fleet", 3)
        b = TraceContext.derive(42, "fleet", 3)
        assert a == b
        assert a.trace_id == b.trace_id
        assert hash(a) == hash(b)

    def test_distinct_parts_get_distinct_traces(self):
        ids = {TraceContext.derive(42, "fleet", i).trace_id
               for i in range(50)}
        assert len(ids) == 50

    def test_ids_are_16_hex_chars(self):
        ctx = TraceContext.derive(7, "x")
        assert len(ctx.trace_id) == 16
        assert len(ctx.span_id) == 16
        int(ctx.trace_id, 16)
        int(ctx.span_id, 16)

    def test_rejects_malformed_ids(self):
        with pytest.raises(ValueError):
            TraceContext("nope", "0" * 16)
        with pytest.raises(ValueError):
            TraceContext("0" * 16, "xyz")

    def test_child_keeps_trace_changes_parent(self):
        root = TraceContext.derive(1, "a")
        kid = root.child("tick", 5)
        assert kid.trace_id == root.trace_id
        assert kid.span_id != root.span_id
        assert kid == root.child("tick", 5)  # deterministic

    def test_wire_round_trip(self):
        ctx = TraceContext.derive(9, "svc")
        recovered = TraceContext.from_wire({"trace": ctx.to_wire()})
        assert recovered == ctx

    @pytest.mark.parametrize("options", [
        {},
        {"trace": None},
        {"trace": "not-a-dict"},
        {"trace": {"trace_id": "0" * 16}},  # span_id missing
        {"trace": {"trace_id": "zz" * 8, "span_id": "0" * 16}},
        {"trace": {"trace_id": "0" * 15, "span_id": "0" * 16}},
        {"trace": {"trace_id": 12345, "span_id": "0" * 16}},
    ])
    def test_malformed_wire_context_reads_as_absent(self, options):
        assert TraceContext.from_wire(options) is None


class TestSpanRecorder:
    def test_disabled_recorder_hands_out_none(self):
        recorder = SpanRecorder(enabled=False)
        ctx = TraceContext.derive(1, "x")
        assert recorder.span_hook("src", ctx) is None
        assert recorder.write_jsonl("/tmp/never-written.jsonl") is None

    def test_hook_records_and_returns_span_id(self):
        recorder = SpanRecorder()
        ctx = TraceContext.derive(1, "x")
        hook = recorder.span_hook("worker", ctx)
        span_id = hook(0.5, 1.5, "op", {"k": 1})
        assert len(span_id) == 16
        (span,) = list(recorder)
        assert span.trace_id == ctx.trace_id
        assert span.parent_id == ctx.span_id
        assert span.span_id == span_id
        assert span.source == "worker"
        assert span.duration == pytest.approx(1.0)
        assert not span.instant

    def test_span_ids_are_deterministic_per_hook_sequence(self):
        ctx = TraceContext.derive(3, "y")

        def ids():
            recorder = SpanRecorder()
            hook = recorder.span_hook("s", ctx)
            return [hook(float(i), float(i), "e", {}) for i in range(5)]

        assert ids() == ids()
        assert len(set(ids())) == 5

    def test_ring_eviction_counts(self):
        recorder = SpanRecorder(capacity=3)
        hook = recorder.span_hook("s", TraceContext.derive(1, "z"))
        for i in range(10):
            hook(float(i), float(i), "e", {})
        assert len(recorder) == 3
        assert recorder.total_recorded == 10
        assert recorder.evicted == 7
        assert recorder.recorded_for("s") == 10

    def test_filters_and_trace_ids(self):
        recorder = SpanRecorder()
        a = TraceContext.derive(1, "a")
        b = TraceContext.derive(1, "b")
        recorder.span_hook("one", a)(0, 1, "tick", {})
        recorder.span_hook("two", b)(0, 1, "tock", {})
        assert len(recorder.spans_of(name="tick")) == 1
        assert len(recorder.spans_of(source="two")) == 1
        assert len(recorder.spans_of(trace_id=a.trace_id)) == 1
        assert recorder.trace_ids() == sorted(
            {a.trace_id, b.trace_id})

    def test_jsonl_and_digest_are_stable(self):
        def build():
            recorder = SpanRecorder()
            hook = recorder.span_hook("s", TraceContext.derive(5, "w"))
            hook(0.25, 0.75, "op", {"layer": 2})
            return recorder

        assert build().to_jsonl() == build().to_jsonl()
        assert build().digest() == build().digest()
        line = json.loads(build().to_jsonl())
        assert line["name"] == "op"
        assert line["fields"] == {"layer": 2}
        assert line["t0"] == 0.25 and line["t1"] == 0.75

    def test_summary_shape(self):
        recorder = SpanRecorder(capacity=8)
        hook = recorder.span_hook("s", TraceContext.derive(1, "q"))
        hook(0, 1, "a", {})
        hook(1, 2, "b", {})
        summary = recorder.summary()
        assert summary["enabled"] is True
        assert summary["recorded"] == 2
        assert summary["names"] == {"a": 1, "b": 1}
        assert summary["traces"] == 1


class TestMergeSpans:
    def test_merge_skips_none_and_disabled(self):
        live = SpanRecorder()
        dead = SpanRecorder(enabled=False)
        live.span_hook("s", TraceContext.derive(1, "m"))(0, 1, "e", {})
        merged = merge_spans(None, dead, live)
        assert len(merged) == 1

    def test_merge_order_is_total_and_deterministic(self):
        r1, r2 = SpanRecorder(), SpanRecorder()
        ctx1 = TraceContext.derive(1, "p")
        ctx2 = TraceContext.derive(1, "q")
        r1.span_hook("client", ctx1)(1.0, 2.0, "a", {})
        r1.span_hook("client", ctx2)(0.0, 1.0, "b", {})
        r2.span_hook("server", ctx1)(0.5, 0.9, "c", {})
        once = merge_spans(r1, r2)
        again = merge_spans(r2, r1)
        key = [(s.trace_id, s.start, s.source) for s in once]
        assert key == [(s.trace_id, s.start, s.source) for s in again]
        assert key == sorted(key)


class TestChromeSpanExport:
    def _spans(self):
        client = SpanRecorder()
        server = SpanRecorder()
        ctx = TraceContext.derive(11, "fleet", 0)
        client.span_hook("load0", ctx)(0.0, 2.0, "client.session", {})
        client.span_hook("load0", ctx)(0.3, 0.3, "client.playout", {})
        server.span_hook("session1", ctx)(0.1, 1.9, "session", {})
        return merge_spans(client, server)

    def test_one_process_per_trace_one_thread_per_source(self):
        doc = chrome_trace(spans=self._spans())
        events = doc["traceEvents"]
        processes = [e for e in events
                     if e["ph"] == "M" and e["name"] == "process_name"]
        threads = [e for e in events
                   if e["ph"] == "M" and e["name"] == "thread_name"]
        trace_names = [p["args"]["name"] for p in processes]
        assert any(n.startswith("trace ") for n in trace_names)
        assert {t["args"]["name"] for t in threads} >= {
            "load0", "session1"}

    def test_timed_vs_instant_phases(self):
        doc = chrome_trace(spans=self._spans())
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert {e["name"] for e in complete} == {
            "client.session", "session"}
        assert {e["name"] for e in instants} == {"client.playout"}
        for e in complete:
            assert e["dur"] >= 1
            assert "span_id" in e["args"]
            assert "parent_id" in e["args"]

    def test_client_and_server_share_a_pid(self):
        doc = chrome_trace(spans=self._spans())
        span_events = [e for e in doc["traceEvents"]
                       if e["ph"] in ("X", "i")]
        assert len({e["pid"] for e in span_events}) == 1
        assert len({e["tid"] for e in span_events}) == 2

    def test_document_is_deterministic(self):
        once = json.dumps(chrome_trace(spans=self._spans()),
                          sort_keys=True)
        again = json.dumps(chrome_trace(spans=self._spans()),
                           sort_keys=True)
        assert once == again
