"""Metrics registry: instruments, hooks, collectors, Prometheus text."""

from __future__ import annotations

import pytest

from repro.telemetry import Counter, Gauge, Histogram, MetricsRegistry


class TestInstruments:
    def test_counter_only_goes_up(self):
        counter = MetricsRegistry().counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1.0)

    def test_gauge_sets_and_incs(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(4.0)
        gauge.inc(-1.5)
        assert gauge.value == 2.5

    def test_histogram_buckets_are_cumulative(self):
        histo = MetricsRegistry().histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 0.7, 5.0, 50.0):
            histo.observe(value)
        assert histo.cumulative() == [2, 3, 4]
        assert histo.count == 4
        assert histo.mean() == pytest.approx(56.2 / 4)

    def test_same_name_and_labels_is_the_same_child(self):
        registry = MetricsRegistry()
        a = registry.counter("c", link="l0")
        b = registry.counter("c", link="l0")
        assert a is b
        assert registry.counter("c", link="l1") is not a

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("m")

    def test_instruments_order_is_deterministic(self):
        registry = MetricsRegistry()
        registry.gauge("b", flow="z")
        registry.gauge("b", flow="a")
        registry.counter("a")
        names = [(i.name, i.labels) for i in registry.instruments()]
        assert names == [
            ("a", ()),
            ("b", (("flow", "a"),)),
            ("b", (("flow", "z"),)),
        ]


class TestHooks:
    def test_hooks_are_bound_methods_when_enabled(self):
        registry = MetricsRegistry()
        inc = registry.counter_hook("c", link="l0")
        assert inc is not None
        inc(2.0)
        assert registry.counter("c", link="l0").value == 2.0
        observe = registry.histogram_hook("h")
        assert observe is not None
        observe(0.5)
        assert registry.histogram("h").count == 1

    def test_all_hooks_none_when_disabled(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter_hook("c") is None
        assert registry.gauge_hook("g") is None
        assert registry.histogram_hook("h") is None

    def test_disabled_registry_registers_no_collectors(self):
        registry = MetricsRegistry(enabled=False)
        calls = []
        registry.register_collector(lambda r: calls.append(r))
        registry.collect()
        assert calls == []
        assert registry.snapshot() == {}
        assert registry.to_prometheus() == ""


class TestCollectors:
    def test_collectors_run_per_export(self):
        registry = MetricsRegistry()
        state = {"depth": 3.0}
        registry.register_collector(
            lambda r: r.gauge("depth").set(state["depth"]))
        snap = registry.snapshot()
        assert snap["depth"]["samples"][0]["value"] == 3.0
        state["depth"] = 7.0
        snap = registry.snapshot()
        assert snap["depth"]["samples"][0]["value"] == 7.0


class TestPrometheus:
    def test_text_format(self):
        registry = MetricsRegistry()
        registry.counter("tx_bytes", "Bytes sent", link="l0").inc(1500)
        histo = registry.histogram("lat", "Latency", buckets=(0.1, 1.0))
        histo.observe(0.05)
        histo.observe(5.0)
        text = registry.to_prometheus()
        assert text == (
            "# HELP lat Latency\n"
            "# TYPE lat histogram\n"
            'lat_bucket{le="0.1"} 1\n'
            'lat_bucket{le="1.0"} 1\n'
            'lat_bucket{le="+Inf"} 2\n'
            "lat_sum 5.05\n"
            "lat_count 2\n"
            "# HELP tx_bytes Bytes sent\n"
            "# TYPE tx_bytes counter\n"
            'tx_bytes{link="l0"} 1500\n'
        )

    def test_exports_are_deterministic(self):
        def build() -> MetricsRegistry:
            registry = MetricsRegistry()
            registry.gauge("g", flow="b").set(1.5)
            registry.gauge("g", flow="a").set(2.5)
            registry.counter("c").inc(3)
            return registry

        assert build().to_prometheus() == build().to_prometheus()
        assert build().snapshot() == build().snapshot()

    def test_instrument_types_export(self):
        registry = MetricsRegistry()
        assert isinstance(registry.counter("c"), Counter)
        assert isinstance(registry.gauge("g"), Gauge)
        assert isinstance(registry.histogram("h"), Histogram)
