"""Sampler shutdown and decimation at simulation end (satellite audit).

``sim.run(until=T)`` is inclusive: a sampler tick scheduled exactly at
``T`` runs, and a decimated sampler's last tick is the largest multiple
of ``period * decimate`` at or below ``T``. These counts are pinned —
the figure experiments derive per-sample rates from them, so an
off-by-one at the end of a run silently skews every final data point.
"""

from __future__ import annotations

import pytest

from repro.sim.trace import PeriodicSampler
from repro.telemetry import TelemetryBus
from tests.telemetry.test_bus import CountingProbe

#: period 0.1 s over a 1.0 s run: ticks at 0.0, 0.1 * d, ..., <= 1.0.
PINNED_COUNTS = {1: 11, 2: 6, 5: 3}


class TestDecimationAtRunEnd:
    @pytest.mark.parametrize("decimate", sorted(PINNED_COUNTS))
    def test_sample_count_is_pinned(self, sim, decimate):
        bus = TelemetryBus(sim, decimate=decimate)
        probe = CountingProbe(period=0.1)
        bus.subscribe(probe)
        sim.run(until=1.0)
        assert len(probe.times) == PINNED_COUNTS[decimate]

    @pytest.mark.parametrize("decimate", sorted(PINNED_COUNTS))
    def test_final_sample_lands_on_the_last_full_period(self, sim,
                                                        decimate):
        bus = TelemetryBus(sim, decimate=decimate)
        probe = CountingProbe(period=0.1)
        bus.subscribe(probe)
        sim.run(until=1.0)
        step = 0.1 * decimate
        assert probe.times[0] == 0.0
        assert probe.times[-1] == pytest.approx(
            step * (PINNED_COUNTS[decimate] - 1))
        # Uniform spacing all the way to the end — no truncated or
        # doubled tick at the boundary.
        gaps = [b - a for a, b in zip(probe.times, probe.times[1:])]
        assert gaps == pytest.approx([step] * (len(probe.times) - 1))

    def test_non_divisible_duration_has_no_phantom_tick(self, sim):
        bus = TelemetryBus(sim, decimate=2)
        probe = CountingProbe(period=0.1)
        bus.subscribe(probe)
        sim.run(until=0.95)
        # Ticks at 0.0, 0.2, ..., 0.8 only; the 1.0 tick is beyond the
        # horizon even though it was already scheduled.
        assert len(probe.times) == 5
        assert probe.times[-1] == pytest.approx(0.8)


class TestSamplerStop:
    def test_stop_cancels_the_pending_tick(self, sim):
        # Horizons sit mid-period: repeated `schedule(period)` ticks
        # accumulate float error, so an exact-boundary horizon would pin
        # rounding, not stop() behavior.
        seen: list[float] = []
        sampler = PeriodicSampler(sim, 0.1, seen.append)
        sim.run(until=0.35)
        sampler.stop()
        sim.run(until=1.0)
        assert len(seen) == 4  # 0.0, 0.1, 0.2, 0.3 — then silence

    def test_stopped_sampler_stops_rescheduling(self, sim):
        """stop() lets the lazily-cancelled tick drain from the heap."""
        sampler = PeriodicSampler(sim, 0.1, lambda now: None)
        sim.run(until=0.1)
        sampler.stop()
        sim.run()  # drains: the pending tick returns without rescheduling
        assert len(sim._heap) == 0

    def test_bus_stop_halts_every_sampler(self, sim):
        bus = TelemetryBus(sim, decimate=2)
        probes = [CountingProbe(period=0.1) for _ in range(3)]
        for probe in probes:
            bus.subscribe(probe)
        sim.run(until=0.4)
        bus.stop()
        sim.run(until=2.0)
        for probe in probes:
            assert len(probe.times) == 3  # 0.0, 0.2, 0.4

    def test_restart_after_stop_is_a_fresh_sampler(self, sim):
        bus = TelemetryBus(sim)
        probe = CountingProbe(period=0.1)
        bus.subscribe(probe)
        sim.run(until=0.2)
        bus.stop()
        sim.run(until=0.5)
        count_when_stopped = len(probe.times)
        # Re-subscribing schedules a new sampler from the current time.
        bus.subscribe(probe, start=sim.now)
        sim.run(until=0.7)
        assert len(probe.times) == count_when_stopped + 3  # 0.5, 0.6, 0.7
