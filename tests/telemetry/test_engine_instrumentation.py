"""Engine self-profiling: attach, record, detach, determinism."""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator
from repro.telemetry import MetricsRegistry, instrument_engine


def fake_timer():
    """A deterministic injected clock: each read advances 1 ms."""
    state = {"t": 0.0}

    def read() -> float:
        state["t"] += 0.001
        return state["t"]

    return read


def _noop() -> None:
    pass


class TestAttachDetach:
    def test_disabled_registry_attaches_nothing(self, sim):
        assert instrument_engine(
            sim, MetricsRegistry(enabled=False), fake_timer()) is None

    def test_handler_counters_and_timings(self, sim):
        registry = MetricsRegistry()
        instrument_engine(sim, registry, fake_timer())
        for i in range(5):
            sim.schedule(0.1 * i, _noop, priority=0)
        sim.run()
        calls = registry.counter(
            "engine_handler_calls_total", handler="_noop")
        assert calls.value == 5.0
        timings = registry.histogram(
            "engine_handler_seconds", handler="_noop")
        assert timings.count == 5
        # The fake timer advances 1 ms per read: every dispatch times
        # at exactly one tick.
        assert timings.total == pytest.approx(0.001 * 5)
        assert registry.histogram("engine_heap_depth").count == 5

    def test_collector_gauges_engine_state(self, sim):
        registry = MetricsRegistry()
        instrument_engine(sim, registry, fake_timer())
        sim.schedule(0.5, _noop, priority=0)
        sim.run(until=2.0)
        registry.collect()
        assert registry.gauge("engine_events_total").value == 1.0
        assert registry.gauge("engine_sim_time_seconds").value == 2.0

    def test_detach_restores_the_fast_path(self, sim):
        registry = MetricsRegistry()
        instrumentation = instrument_engine(sim, registry, fake_timer())
        sim.schedule(0.1, _noop, priority=0)
        sim.run(until=0.2)
        assert instrumentation is not None
        instrumentation.detach()
        sim.schedule(0.1, _noop, priority=0)
        sim.run(until=0.4)
        # Second event ran on the fast path: no new handler samples.
        calls = registry.counter(
            "engine_handler_calls_total", handler="_noop")
        assert calls.value == 1.0
        assert sim.events_processed == 2


class TestObservedLoopEquivalence:
    def test_same_schedule_same_outcome(self):
        """The observed loop must dispatch identically to the fast one."""

        def drive(sim: Simulator) -> list[tuple[float, int]]:
            log: list[tuple[float, int]] = []

            def tick(i: int) -> None:
                log.append((sim.now, i))
                if i < 10:
                    sim.schedule(0.1, tick, priority=1, args=(i + 1,))

            sim.schedule(0.0, tick, priority=1, args=(0,))
            sim.run(until=0.75)
            return log

        plain = Simulator()
        observed = Simulator()
        instrument_engine(observed, MetricsRegistry(), fake_timer())
        assert drive(plain) == drive(observed)
        assert plain.now == observed.now
        assert plain.events_processed == observed.events_processed
