"""Flight recorder: determinism, ring-buffer eviction, disabled path."""

from __future__ import annotations

import concurrent.futures
import json

import pytest

from repro.experiments.multiflow_fairness import build_scenario
from repro.telemetry import DecisionRecord, FlightRecorder


class TestDecisionRecord:
    def test_json_line_is_sorted_and_compact(self):
        record = DecisionRecord(3, 1.25, "qa0", "drop",
                                {"layer": 2, "cause": "rule"})
        line = record.to_json()
        assert line == ('{"fields":{"cause":"rule","layer":2},'
                        '"kind":"drop","seq":3,"src":"qa0","t":1.25}')

    def test_fields_are_copied(self):
        fields = {"layer": 1}
        record = DecisionRecord(0, 0.0, "qa", "add", fields)
        fields["layer"] = 9
        assert record.fields == {"layer": 1}


class TestRingBuffer:
    def test_eviction_is_fifo_and_counted(self):
        rec = FlightRecorder(capacity=3)
        for i in range(5):
            rec.record(float(i), "qa", "tick", {"i": i})
        assert len(rec) == 3
        assert rec.total_recorded == 5
        assert rec.evicted == 2
        # Oldest two evicted: retained seqs are 2, 3, 4 in order.
        assert [r.seq for r in rec] == [2, 3, 4]
        assert [r.fields["i"] for r in rec] == [2, 3, 4]

    def test_sequence_numbers_survive_eviction(self):
        rec = FlightRecorder(capacity=2)
        for i in range(4):
            rec.record(0.0, "qa", "tick", {})
        # seq keeps counting even though early records are gone.
        assert rec.total_recorded == 4
        assert [r.seq for r in rec] == [2, 3]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)

    def test_records_of_filters_kind_and_source(self):
        rec = FlightRecorder()
        rec.record(0.0, "qa0", "drop", {})
        rec.record(1.0, "qa1", "drop", {})
        rec.record(2.0, "qa0", "add", {})
        assert len(rec.records_of("drop")) == 2
        assert [r.source for r in rec.records_of("drop", "qa1")] == ["qa1"]


class TestDisabledPath:
    def test_hook_is_none(self):
        assert FlightRecorder(enabled=False).hook("qa") is None

    def test_record_is_dropped(self):
        rec = FlightRecorder(enabled=False)
        rec.record(0.0, "qa", "drop", {})
        assert len(rec) == 0
        assert rec.total_recorded == 0

    def test_write_jsonl_creates_no_file(self, tmp_path):
        rec = FlightRecorder(enabled=False)
        target = tmp_path / "sub" / "flight.jsonl"
        assert rec.write_jsonl(target) is None
        assert not target.exists()
        assert not target.parent.exists()

    def test_empty_enabled_recorder_exports_empty_log(self):
        rec = FlightRecorder()
        assert rec.to_jsonl() == ""
        assert rec.summary()["retained"] == 0


class TestExport:
    def test_write_jsonl_round_trips(self, tmp_path):
        rec = FlightRecorder()
        rec.record(0.5, "qa", "drop", {"layer": 2})
        rec.record(1.5, "qa", "add", {"layer": 2})
        target = rec.write_jsonl(tmp_path / "flight.jsonl")
        assert target is not None
        lines = target.read_text().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert [p["kind"] for p in parsed] == ["drop", "add"]
        assert parsed[0]["fields"] == {"layer": 2}

    def test_summary_counts_kinds(self):
        rec = FlightRecorder(capacity=8)
        rec.record(0.0, "qa", "drop", {})
        rec.record(1.0, "qa", "drop", {})
        rec.record(2.0, "qa", "add", {})
        summary = rec.summary()
        assert summary["kinds"] == {"add": 1, "drop": 2}
        assert summary["recorded"] == 3
        assert summary["digest"] == rec.digest()


# ----------------------------------------------------------- determinism

def _multiflow_jsonl(seed: int) -> str:
    """Module-level so it pickles into a worker process."""
    scenario = build_scenario(1, 1, duration=5.0, seed=seed,
                              record_decisions=True)
    scenario.run()
    return scenario.recorder.to_jsonl()


class TestSeedStability:
    def test_same_seed_runs_are_bit_identical(self):
        assert _multiflow_jsonl(3) == _multiflow_jsonl(3)

    def test_worker_process_matches_serial(self):
        # The experiment runner farms cache misses out to worker
        # processes; the decision log must not depend on process
        # identity or PYTHONHASHSEED.
        serial = _multiflow_jsonl(3)
        with concurrent.futures.ProcessPoolExecutor(1) as pool:
            pooled = pool.submit(_multiflow_jsonl, 3).result()
        assert pooled == serial

    def test_different_seeds_diverge(self):
        assert _multiflow_jsonl(3) != _multiflow_jsonl(4)

    def test_drop_records_carry_rule_inputs(self):
        scenario = build_scenario(2, 2, duration=15.0, seed=1,
                                  record_decisions=True)
        scenario.run()
        drops = scenario.recorder.records_of("drop")
        assert drops, "expected at least one layer drop in 15 s"
        for record in drops:
            # Every drop is annotated with the section 2.2 inequality
            # inputs: R, na*C, S, the drainable buffer, and the
            # sqrt(2*S*buf) threshold.
            assert {"rate", "consumption", "slope", "drainable",
                    "threshold", "buffers", "layer",
                    "cause"} <= set(record.fields)
